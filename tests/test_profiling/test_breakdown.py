"""Simulated profiler breakdowns: the claims of Figures 4, 7, and 10."""

import pytest

from repro.devices import device_info
from repro.profiling import ProfilerOOM, breakdown_for, breakdown_table, format_breakdown


class TestFig4Ultra96:
    """Fig. 4: Ultra96-v2, batch 50, WRN + R18 (RXT unprofilable)."""

    def test_conv_fw_same_across_methods(self, full_summaries):
        device = device_info("ultra96")
        rows = {m: breakdown_for(full_summaries["wrn40_2"], device, m)
                for m in ("no_adapt", "bn_norm", "bn_opt")}
        assert rows["bn_norm"].conv_fw_s == pytest.approx(rows["no_adapt"].conv_fw_s)
        assert rows["bn_opt"].conv_fw_s == pytest.approx(rows["no_adapt"].conv_fw_s)

    def test_bn_fw_ratio_wrn_about_3_7x(self, full_summaries):
        device = device_info("ultra96")
        base = breakdown_for(full_summaries["wrn40_2"], device, "no_adapt")
        adapted = breakdown_for(full_summaries["wrn40_2"], device, "bn_norm")
        assert adapted.bn_fw_s / base.bn_fw_s == pytest.approx(3.68, rel=0.1)

    def test_bn_fw_ratio_r18_about_4_7x(self, full_summaries):
        device = device_info("ultra96")
        base = breakdown_for(full_summaries["resnet18"], device, "no_adapt")
        adapted = breakdown_for(full_summaries["resnet18"], device, "bn_norm")
        assert adapted.bn_fw_s / base.bn_fw_s == pytest.approx(4.71, rel=0.1)

    def test_conv_bw_ratio_at_most_2_51x(self, full_summaries):
        device = device_info("ultra96")
        for model in ("wrn40_2", "resnet18"):
            row = breakdown_for(full_summaries[model], device, "bn_opt")
            assert row.conv_bw_s / row.conv_fw_s <= 2.51 + 1e-6

    def test_bn_bw_ratio_at_most_2_78x(self, full_summaries):
        device = device_info("ultra96")
        row = breakdown_for(full_summaries["wrn40_2"], device, "bn_opt")
        assert row.bn_bw_s / row.bn_fw_s <= 2.78 + 1e-6

    def test_no_backward_for_noadapt_and_bnnorm(self, full_summaries):
        device = device_info("ultra96")
        for method in ("no_adapt", "bn_norm"):
            row = breakdown_for(full_summaries["wrn40_2"], device, method)
            assert row.conv_bw_s == 0.0 and row.bn_bw_s == 0.0

    def test_rxt_profiling_ooms(self, full_summaries):
        device = device_info("ultra96")
        with pytest.raises(ProfilerOOM):
            breakdown_for(full_summaries["resnext29"], device, "bn_opt")

    def test_table_skips_oom_rows(self, full_summaries):
        device = device_info("ultra96")
        rows = breakdown_table([full_summaries["wrn40_2"],
                                full_summaries["resnet18"],
                                full_summaries["resnext29"]], device)
        models_with_bnopt = {r.model for r in rows if r.method == "bn_opt"}
        assert "resnext29" not in models_with_bnopt
        assert {"wrn40_2", "resnet18"} <= models_with_bnopt


class TestFig7RPi:
    def test_bn_fw_ratio_up_to_4_6x(self, full_summaries):
        device = device_info("rpi4")
        ratios = []
        for model in ("wrn40_2", "resnet18", "resnext29"):
            base = breakdown_for(full_summaries[model], device, "no_adapt")
            adapted = breakdown_for(full_summaries[model], device, "bn_norm")
            ratios.append(adapted.bn_fw_s / base.bn_fw_s)
        assert max(ratios) <= 4.6 + 0.5
        assert max(ratios) > 2.0

    def test_all_three_models_profile_on_rpi(self, full_summaries):
        device = device_info("rpi4")
        rows = breakdown_table([full_summaries[m] for m in
                                ("wrn40_2", "resnet18", "resnext29")], device)
        assert len(rows) == 9


class TestFig10Xavier:
    def test_gpu_conv_bw_ratio_2_2x(self, full_summaries):
        device = device_info("xavier_nx_gpu")
        row = breakdown_for(full_summaries["wrn40_2"], device, "bn_opt")
        assert row.conv_bw_s / row.conv_fw_s == pytest.approx(2.2, rel=0.01)

    def test_cpu_conv_bw_ratio_2_5x(self, full_summaries):
        device = device_info("xavier_nx_cpu")
        row = breakdown_for(full_summaries["wrn40_2"], device, "bn_opt")
        assert row.conv_bw_s / row.conv_fw_s == pytest.approx(2.5, rel=0.01)

    def test_rxt_bn_fw_worse_on_gpu_than_cpu(self, full_summaries):
        """Fig. 10's surprise: the BN forward (with stat recompute) of
        ResNeXt is slower on the Volta than on the Carmel CPU."""
        gpu = breakdown_for(full_summaries["resnext29"],
                            device_info("xavier_nx_gpu"), "bn_norm")
        cpu = breakdown_for(full_summaries["resnext29"],
                            device_info("xavier_nx_cpu"), "bn_norm")
        assert gpu.bn_fw_s > cpu.bn_fw_s

    def test_but_overall_gpu_still_wins(self, full_summaries):
        gpu = breakdown_for(full_summaries["resnext29"],
                            device_info("xavier_nx_gpu"), "bn_norm")
        cpu = breakdown_for(full_summaries["resnext29"],
                            device_info("xavier_nx_cpu"), "bn_norm")
        assert gpu.total_s < cpu.total_s


class TestRendering:
    def test_format_contains_all_rows(self, full_summaries):
        rows = breakdown_table([full_summaries["wrn40_2"]],
                               device_info("rpi4"))
        text = format_breakdown(rows, title="Fig. 7")
        assert "Fig. 7" in text
        assert text.count("wrn40_2") == 3

    def test_unknown_method_raises(self, full_summaries):
        with pytest.raises(KeyError):
            breakdown_for(full_summaries["wrn40_2"], device_info("rpi4"),
                          "bn_magic")


class TestConsistencyWithCostModel:
    """The profiler's decomposition must sum to the latency model's
    total for every configuration — same model, two views."""

    @pytest.mark.parametrize("device_name", ["ultra96", "rpi4",
                                             "xavier_nx_cpu",
                                             "xavier_nx_gpu"])
    @pytest.mark.parametrize("method", ["no_adapt", "bn_norm", "bn_opt"])
    def test_totals_agree(self, full_summaries, device_name, method):
        from repro.devices.cost_model import forward_latency
        device = device_info(device_name)
        summary = full_summaries["wrn40_2"]
        row = breakdown_for(summary, device, method, batch_size=50,
                            check_profiler_memory=False)
        flags = {"no_adapt": (False, False), "bn_norm": (True, False),
                 "bn_opt": (True, True)}[method]
        latency = forward_latency(summary, 50, device,
                                  adapts_bn_stats=flags[0],
                                  does_backward=flags[1])
        assert row.total_s == pytest.approx(latency.forward_time_s,
                                            rel=1e-9)
