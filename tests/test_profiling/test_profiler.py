"""Native wall-clock profiler on real numpy executions."""

import numpy as np
import pytest

from repro.models import build_model
from repro.profiling import profile_native
from repro.tensor import functional as F


@pytest.fixture(scope="module")
def tiny_model():
    model = build_model("wrn40_2", "tiny")
    model.train()
    return model


@pytest.fixture(scope="module")
def batch(rng=None):
    return np.random.default_rng(0).standard_normal((8, 3, 16, 16)).astype(np.float32)


class TestNativeProfile:
    def test_records_forward_kinds(self, tiny_model, batch):
        profile = profile_native(tiny_model, batch)
        assert profile.conv_fw_s > 0
        assert profile.bn_fw_s > 0
        assert "act" in profile.forward_s_by_kind

    def test_kind_times_bounded_by_total(self, tiny_model, batch):
        profile = profile_native(tiny_model, batch)
        assert sum(profile.forward_s_by_kind.values()) <= profile.total_forward_s + 0.05

    def test_backward_timed_when_loss_given(self, tiny_model, batch):
        profile = profile_native(tiny_model, batch, loss_fn=F.entropy_loss)
        assert profile.backward_s > 0

    def test_no_backward_without_loss(self, tiny_model, batch):
        profile = profile_native(tiny_model, batch)
        assert profile.backward_s == 0.0

    def test_conv_dominates_forward(self, tiny_model, batch):
        """Same qualitative shape as the simulated breakdowns: convolution
        is the largest forward component."""
        profile = profile_native(tiny_model, batch)
        assert profile.conv_fw_s >= profile.bn_fw_s

    def test_describe(self, tiny_model, batch):
        text = profile_native(tiny_model, batch).describe()
        assert "conv=" in text and "backward=" in text
