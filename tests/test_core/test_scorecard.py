"""The reproduction scorecard must pass every machine-checkable claim."""

import pytest

from repro.core.scorecard import Check, format_scorecard, run_scorecard


@pytest.fixture(scope="module")
def checks():
    return run_scorecard()


class TestScorecard:
    def test_total_claim_count(self, checks):
        # 33 anchors + 1 OOM + 15 selections + 3 accuracy + 5 insights
        assert len(checks) == 57

    def test_every_claim_passes(self, checks):
        failures = [c for c in checks if not c.passed]
        detail = "\n".join(f"{c.category}/{c.name}: {c.detail}"
                           for c in failures)
        assert not failures, f"claims failing:\n{detail}"

    def test_categories_present(self, checks):
        assert {c.category for c in checks} == {
            "anchor", "memory", "selection", "accuracy", "insight"}

    def test_format_tallies(self, checks):
        text = format_scorecard(checks)
        assert "57/57 claims reproduced" in text
        assert "[anchor] 33/33" in text

    def test_format_shows_failures(self):
        failing = [Check("demo", "broken claim", False, "evidence here")]
        text = format_scorecard(failing)
        assert "FAIL" in text and "evidence here" in text
        assert "0/1" in text
