"""The reconstructed Fig. 2 grid must satisfy every stated paper aggregate."""

import numpy as np
import pytest

from repro.core.reference import (
    BATCH_SIZES,
    BN_NORM_ERROR_PCT,
    BN_OPT_ERROR_PCT,
    CLAIM_BN_NORM_MEAN_IMPROVEMENT,
    CLAIM_BN_OPT_MEAN_IMPROVEMENT,
    CLAIM_BN_OPT_OVER_BN_NORM,
    MOBILENET_BN_OPT_200_ERROR_PCT,
    MOBILENET_NO_ADAPT_ERROR_PCT,
    NO_ADAPT_ERROR_PCT,
    reference_error_pct,
)

MODELS = ("resnext29", "wrn40_2", "resnet18")


def grid(method):
    table = {"bn_norm": BN_NORM_ERROR_PCT, "bn_opt": BN_OPT_ERROR_PCT}[method]
    return [table[m][i] for m in MODELS for i in range(3)]


class TestStatedValues:
    def test_wrn50_triplet(self):
        assert reference_error_pct("wrn40_2", "no_adapt", 50) == 18.26
        assert reference_error_pct("wrn40_2", "bn_norm", 50) == 15.21
        assert reference_error_pct("wrn40_2", "bn_opt", 50) == 12.37

    def test_best_configuration_is_rxt_200_bn_opt(self):
        all_values = {(m, meth, b): reference_error_pct(m, meth, b)
                      for m in MODELS for meth in ("no_adapt", "bn_norm", "bn_opt")
                      for b in BATCH_SIZES}
        best = min(all_values, key=all_values.get)
        assert best == ("resnext29", "bn_opt", 200)
        assert all_values[best] == 10.15

    def test_bn_opt_range_matches_section_iv_f(self):
        values = grid("bn_opt")
        assert min(values) == 10.15
        assert max(values) == 12.97

    def test_mobilenet_values(self):
        assert reference_error_pct("mobilenet_v2", "no_adapt", 100) == \
            MOBILENET_NO_ADAPT_ERROR_PCT
        assert reference_error_pct("mobilenet_v2", "bn_opt", 200) == \
            MOBILENET_BN_OPT_200_ERROR_PCT


class TestStatedAggregates:
    def test_bn_norm_mean_improvement(self):
        no_adapt_mean = np.mean([NO_ADAPT_ERROR_PCT[m] for m in MODELS
                                 for _ in BATCH_SIZES])
        improvement = no_adapt_mean - np.mean(grid("bn_norm"))
        assert improvement == pytest.approx(CLAIM_BN_NORM_MEAN_IMPROVEMENT,
                                            abs=0.05)

    def test_bn_opt_mean_improvement(self):
        no_adapt_mean = np.mean([NO_ADAPT_ERROR_PCT[m] for m in MODELS
                                 for _ in BATCH_SIZES])
        improvement = no_adapt_mean - np.mean(grid("bn_opt"))
        assert improvement == pytest.approx(CLAIM_BN_OPT_MEAN_IMPROVEMENT,
                                            abs=0.05)

    def test_bn_opt_over_bn_norm(self):
        improvement = np.mean(grid("bn_norm")) - np.mean(grid("bn_opt"))
        assert improvement == pytest.approx(CLAIM_BN_OPT_OVER_BN_NORM, abs=0.05)


class TestStructuralProperties:
    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("method", ["bn_norm", "bn_opt"])
    def test_diminishing_returns_with_batch_size(self, model, method):
        e50 = reference_error_pct(model, method, 50)
        e100 = reference_error_pct(model, method, 100)
        e200 = reference_error_pct(model, method, 200)
        assert e50 > e100 > e200
        assert (e50 - e100) > (e100 - e200)

    @pytest.mark.parametrize("model", MODELS)
    def test_no_adapt_batch_size_independent(self, model):
        values = {reference_error_pct(model, "no_adapt", b) for b in BATCH_SIZES}
        assert len(values) == 1

    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_method_ordering(self, model, batch):
        assert (reference_error_pct(model, "bn_opt", batch)
                < reference_error_pct(model, "bn_norm", batch)
                < reference_error_pct(model, "no_adapt", batch))

    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_resnext_best_adapted_model(self, batch):
        # most BN parameters -> best post-adaptation accuracy (insight i)
        assert (reference_error_pct("resnext29", "bn_opt", batch)
                == min(reference_error_pct(m, "bn_opt", batch) for m in MODELS))

    def test_mobilenet_worst_overall(self):
        # robust offline training matters (insight vi)
        assert reference_error_pct("mobilenet_v2", "bn_opt", 200) > \
            max(grid("bn_opt"))

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            reference_error_pct("wrn40_2", "fine_tune", 50)

    def test_unknown_batch_raises(self):
        with pytest.raises(ValueError):
            reference_error_pct("wrn40_2", "bn_norm", 64)
