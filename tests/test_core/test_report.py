"""Figure/table renderers."""


from repro.core.report import (
    render_error_grid,
    render_forward_times,
    render_mobilenet_table,
    render_overall,
    render_tradeoffs,
)
from repro.core.config import StudyConfig
from repro.core.runner import run_simulated_study


class TestErrorGrid:
    def test_contains_all_models_and_batches(self):
        text = render_error_grid()
        for model in ("resnext29", "wrn40_2", "resnet18"):
            assert model in text
        assert "18.26" in text and "10.15" in text

    def test_custom_errors(self):
        errors = {(m, meth, b): 1.0
                  for m in ("resnext29", "wrn40_2", "resnet18")
                  for meth in ("no_adapt", "bn_norm", "bn_opt")
                  for b in (50, 100, 200)}
        text = render_error_grid(errors, title="custom")
        assert "custom" in text and "1.00" in text


class TestForwardTimes:
    def test_bars_and_oom_markers(self, simulated_study):
        text = render_forward_times(simulated_study, "ultra96")
        assert "OOM" in text             # RXT + BN-Opt rows
        assert "#" in text               # bars
        assert "WRN-AM-50" in text

    def test_gpu_report_no_oom_except_rxt200(self, simulated_study):
        text = render_forward_times(simulated_study, "xavier_nx_gpu")
        assert text.count("OOM") == 1


class TestTradeoffs:
    def test_contains_selections_and_pareto(self, simulated_study):
        text = render_tradeoffs(simulated_study, "rpi4")
        assert "Pareto-optimal" in text
        assert "equal" in text and "minmax" in text

    def test_all_devices_mode(self, simulated_study):
        text = render_tradeoffs(simulated_study)
        assert "all devices" in text


class TestOverall:
    def test_a1_a2_a3(self, simulated_study):
        text = render_overall(simulated_study)
        assert "A1" in text and "RXT-AM-200 + BN-Opt @ xavier_nx_cpu" in text
        assert "A2" in text and "RXT-AM-200 + BN-Opt @ rpi4" in text
        assert "10.15%" in text


class TestMobilenetTable:
    def test_table_shape(self):
        result = run_simulated_study(StudyConfig(models=("mobilenet_v2",),
                                                 devices=("xavier_nx_gpu",)))
        text = render_mobilenet_table(result)
        assert "Table I" in text
        assert text.count("\n") == 5   # title + header + rule + 3 rows
