"""Weighted multi-objective selection and the paper's optimal picks."""

import numpy as np
import pytest

from repro.core.objectives import (
    WEIGHT_CASES,
    format_selection_table,
    normalize_records,
    score_records,
    select_best,
    selection_table,
)
from repro.core.records import MeasurementRecord, StudyResult


def record(t, e, err, **kw):
    defaults = dict(model="wrn40_2", method="bn_norm", batch_size=50,
                    device="rpi4")
    defaults.update(kw)
    return MeasurementRecord(error_pct=err, forward_time_s=t, energy_j=e,
                             **defaults)


class TestWeightCases:
    def test_four_cases_sum_to_one(self):
        assert set(WEIGHT_CASES) == {"equal", "performance", "accuracy",
                                     "energy"}
        for case in WEIGHT_CASES.values():
            assert sum(case.weights) == pytest.approx(1.0)

    def test_priorities(self):
        assert WEIGHT_CASES["performance"].w_time == 0.8
        assert WEIGHT_CASES["accuracy"].w_error == 0.8
        assert WEIGHT_CASES["energy"].w_energy == 0.8


class TestNormalization:
    def test_raw_passthrough(self):
        records = [record(1, 2, 3), record(4, 5, 6)]
        values = normalize_records(records, "raw")
        np.testing.assert_allclose(values, [[1, 2, 3], [4, 5, 6]])

    def test_max_scheme(self):
        records = [record(1, 2, 10), record(2, 4, 20)]
        values = normalize_records(records, "max")
        np.testing.assert_allclose(values[1], [1, 1, 1])
        np.testing.assert_allclose(values[0], [0.5, 0.5, 0.5])

    def test_minmax_scheme(self):
        records = [record(1, 2, 10), record(3, 6, 30)]
        values = normalize_records(records, "minmax")
        np.testing.assert_allclose(values[0], [0, 0, 0])
        np.testing.assert_allclose(values[1], [1, 1, 1])

    def test_minmax_degenerate_axis(self):
        records = [record(1, 2, 10), record(1, 4, 20)]
        values = normalize_records(records, "minmax")
        assert np.isfinite(values).all()

    def test_unknown_scheme_raises(self):
        with pytest.raises(ValueError):
            normalize_records([record(1, 2, 3)], "zscore")

    def test_nan_records_rejected(self):
        bad = MeasurementRecord(model="m", method="bn_opt", batch_size=50,
                                device="d", error_pct=10.0,
                                forward_time_s=float("nan"),
                                energy_j=float("nan"), oom=True)
        with pytest.raises(ValueError):
            normalize_records([bad], "raw")


class TestSelection:
    def test_select_best_minimizes(self):
        slow_accurate = record(10, 10, 5, method="bn_opt")
        fast_sloppy = record(1, 1, 20, method="no_adapt")
        result = StudyResult([slow_accurate, fast_sloppy])
        perf = select_best(result, WEIGHT_CASES["performance"], "raw")
        acc = select_best(result, WEIGHT_CASES["accuracy"], "raw")
        assert perf.method == "no_adapt"
        assert acc.method == "bn_opt"

    def test_select_skips_oom(self):
        oom = MeasurementRecord(model="m", method="bn_opt", batch_size=50,
                                device="d", error_pct=1.0,
                                forward_time_s=float("nan"),
                                energy_j=float("nan"), oom=True)
        ok = record(1, 1, 50)
        best = select_best(StudyResult([oom, ok]), WEIGHT_CASES["equal"])
        assert best is ok

    def test_select_empty_raises(self):
        with pytest.raises(ValueError):
            select_best(StudyResult([]), WEIGHT_CASES["equal"])

    def test_scores_length_matches(self):
        records = [record(1, 2, 3), record(4, 5, 6)]
        assert len(score_records(records, WEIGHT_CASES["equal"])) == 2

    def test_selection_table_covers_cases_and_schemes(self):
        result = StudyResult([record(1, 2, 3), record(4, 5, 6)])
        rows = selection_table(result, schemes=("raw", "minmax"))
        assert len(rows) == 8

    def test_format_selection_table(self):
        result = StudyResult([record(1, 2, 3)])
        text = format_selection_table(result)
        assert "equal" in text and "raw" in text


class TestPaperSelections:
    """The study-level assertions: our simulated grid must produce the
    paper's chosen configurations (Sections IV-B/C/D)."""

    @pytest.mark.parametrize("device,case,scheme,model,method", [
        ("ultra96", "equal", "raw", "wrn40_2", "bn_norm"),
        ("ultra96", "accuracy", "raw", "wrn40_2", "bn_opt"),
        ("ultra96", "performance", "raw", "wrn40_2", "no_adapt"),
        ("ultra96", "energy", "raw", "wrn40_2", "no_adapt"),
        ("rpi4", "equal", "raw", "wrn40_2", "bn_norm"),
        ("rpi4", "accuracy", "raw", "wrn40_2", "bn_opt"),
        # the paper's RPi performance-priority pick needs normalization
        ("rpi4", "performance", "minmax", "wrn40_2", "bn_norm"),
        ("rpi4", "energy", "raw", "wrn40_2", "no_adapt"),
    ])
    def test_per_device_selection(self, simulated_study, device, case,
                                  scheme, model, method):
        best = select_best(simulated_study.filter(device=device),
                           WEIGHT_CASES[case], scheme)
        assert (best.model, best.method, best.batch_size) == (model, method, 50)

    @pytest.mark.parametrize("case,method", [
        ("equal", "bn_norm"),
        ("accuracy", "bn_opt"),
        ("performance", "no_adapt"),
        ("energy", "no_adapt"),
    ])
    def test_xavier_selects_gpu_wrn50(self, simulated_study, case, method):
        nx = StudyResult(
            simulated_study.filter(device="xavier_nx_gpu").records
            + simulated_study.filter(device="xavier_nx_cpu").records)
        best = select_best(nx, WEIGHT_CASES[case], "raw")
        assert best.device == "xavier_nx_gpu"
        assert (best.model, best.method, best.batch_size) == \
            ("wrn40_2", method, 50)

    def test_overall_a3(self, simulated_study):
        best = select_best(simulated_study, WEIGHT_CASES["equal"], "raw")
        assert best.label == "WRN-AM-50 + BN-Norm @ xavier_nx_gpu"
