"""Study runners: simulated grid integrity and a micro native run."""

import math

import pytest

from repro.core.config import StudyConfig
from repro.core.runner import run_native_study, run_simulated_study


class TestSimulatedStudy:
    def test_full_grid_size(self, simulated_study):
        assert len(simulated_study) == 108   # 3 models x 3 methods x 3 batches x 4 devices

    def test_exactly_three_oom_records(self, simulated_study):
        oom = [r for r in simulated_study if r.oom]
        labels = {r.label for r in oom}
        assert labels == {
            "RXT-AM-100 + BN-Opt @ ultra96",
            "RXT-AM-200 + BN-Opt @ ultra96",
            "RXT-AM-200 + BN-Opt @ xavier_nx_gpu",
        }

    def test_oom_records_have_nan_costs(self, simulated_study):
        for r in simulated_study:
            if r.oom:
                assert math.isnan(r.forward_time_s)
                assert math.isnan(r.energy_j)
            else:
                assert r.forward_time_s > 0 and r.energy_j > 0

    def test_errors_come_from_reference_grid(self, simulated_study):
        from repro.core.reference import reference_error_pct
        for r in simulated_study:
            assert r.error_pct == reference_error_pct(r.model, r.method,
                                                      r.batch_size)

    def test_adapt_overhead_zero_for_no_adapt(self, simulated_study):
        for r in simulated_study.feasible():
            if r.method == "no_adapt":
                assert r.adapt_overhead_s == pytest.approx(0.0)
            else:
                assert r.adapt_overhead_s > 0

    def test_memory_recorded(self, simulated_study):
        assert all(r.memory_gb > 0 for r in simulated_study)

    def test_custom_grid(self):
        result = run_simulated_study(StudyConfig(
            models=("mobilenet_v2",), devices=("xavier_nx_gpu",),
            batch_sizes=(50,)))
        assert len(result) == 3


class TestNativeStudy:
    @pytest.fixture(scope="class")
    def native_result(self, micro_trained_model):
        model, _ = micro_trained_model
        config = StudyConfig(models=("wrn40_2",),
                             methods=("no_adapt", "bn_norm"),
                             batch_sizes=(50,),
                             corruptions=("fog", "gaussian_noise"),
                             image_size=16, stream_samples=200)
        return run_native_study(config, models={"wrn40_2": model})

    def test_grid_shape(self, native_result):
        assert len(native_result) == 2

    def test_errors_are_measured_percentages(self, native_result):
        for r in native_result:
            assert 0.0 <= r.error_pct <= 100.0
            assert r.device == "host"
            assert r.forward_time_s > 0

    def test_bn_norm_beats_no_adapt(self, native_result):
        no_adapt = native_result.one("wrn40_2", "no_adapt", 50)
        bn_norm = native_result.one("wrn40_2", "bn_norm", 50)
        assert bn_norm.error_pct < no_adapt.error_pct


class TestNativeStudyExtensions:
    def test_extension_methods_run_in_grid(self, micro_trained_model):
        """The native runner accepts extension algorithms with kwargs."""
        model, _ = micro_trained_model
        config = StudyConfig(models=("wrn40_2",),
                             methods=("bn_norm_blend",),
                             batch_sizes=(50,),
                             corruptions=("fog",),
                             image_size=16, stream_samples=150,
                             method_kwargs={"bn_norm_blend":
                                            {"source_count": 8}})
        result = run_native_study(config, models={"wrn40_2": model})
        record = result.one("wrn40_2", "bn_norm_blend", 50)
        assert 0.0 <= record.error_pct <= 100.0

    def test_per_corruption_records(self, micro_trained_model):
        model, _ = micro_trained_model
        config = StudyConfig(models=("wrn40_2",), methods=("bn_norm",),
                             batch_sizes=(50,),
                             corruptions=("fog", "gaussian_noise"),
                             image_size=16, stream_samples=150)
        result = run_native_study(config, models={"wrn40_2": model},
                                  per_corruption=True)
        # 1 aggregate + 2 per-corruption records
        assert len(result) == 3
        fog = result.one("wrn40_2", "bn_norm", 50, corruption="fog")
        noise = result.one("wrn40_2", "bn_norm", 50,
                           corruption="gaussian_noise")
        aggregate = result.one("wrn40_2", "bn_norm", 50)
        assert aggregate.corruption == ""
        assert aggregate.error_pct == pytest.approx(
            (fog.error_pct + noise.error_pct) / 2)

    def test_mce_from_native_study(self, micro_trained_model):
        from repro.core.metrics import mce
        model, _ = micro_trained_model
        config = StudyConfig(models=("wrn40_2",),
                             methods=("no_adapt", "bn_norm"),
                             batch_sizes=(50,),
                             corruptions=("fog", "gaussian_noise"),
                             image_size=16, stream_samples=150)
        result = run_native_study(config, models={"wrn40_2": model},
                                  per_corruption=True)
        def per_corr(method):
            return {c: result.one("wrn40_2", method, 50,
                                  corruption=c).error_pct
                    for c in ("fog", "gaussian_noise")}
        score = mce(per_corr("bn_norm"), per_corr("no_adapt"))
        assert score < 100.0   # adaptation beats the frozen baseline
