"""Corruption-robustness metrics (mCE family)."""

import pytest

from repro.core.metrics import corruption_errors, mce, relative_mce


ERRORS = {"fog": 20.0, "snow": 30.0}
BASELINE = {"fog": 40.0, "snow": 60.0}


class TestMeanError:
    def test_mean(self):
        assert corruption_errors(ERRORS) == 25.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            corruption_errors({})


class TestMCE:
    def test_half_as_fragile(self):
        assert mce(ERRORS, BASELINE) == pytest.approx(50.0)

    def test_identical_model_is_100(self):
        assert mce(BASELINE, BASELINE) == pytest.approx(100.0)

    def test_mixed_ratios_average(self):
        model = {"fog": 40.0, "snow": 30.0}   # ratios 1.0 and 0.5
        assert mce(model, BASELINE) == pytest.approx(75.0)

    def test_mismatched_corruptions_raise(self):
        with pytest.raises(ValueError):
            mce(ERRORS, {"fog": 40.0})

    def test_zero_baseline_raises(self):
        with pytest.raises(ValueError):
            mce(ERRORS, {"fog": 0.0, "snow": 60.0})


class TestRelativeMCE:
    def test_same_degradation_is_100(self):
        assert relative_mce(BASELINE, 10.0, BASELINE, 10.0) == \
            pytest.approx(100.0)

    def test_half_the_degradation(self):
        model = {"fog": 25.0, "snow": 35.0}   # gaps 15, 25 vs 30, 50
        assert relative_mce(model, 10.0, BASELINE, 10.0) == \
            pytest.approx(100 * (15 / 30 + 25 / 50) / 2)

    def test_non_degrading_baseline_raises(self):
        with pytest.raises(ValueError):
            relative_mce(ERRORS, 5.0, {"fog": 4.0, "snow": 60.0}, 5.0)


class TestOnReferenceGrid:
    def test_adapted_models_beat_no_adapt_in_mce_terms(self):
        """Using No-Adapt as the baseline, BN-Norm's mCE must be well
        under 100 (here the reference grid is flat across corruptions,
        so mCE reduces to the error ratio — still a sanity anchor)."""
        from repro.core.reference import reference_error_pct
        baseline = {f"c{i}": reference_error_pct("wrn40_2", "no_adapt", 50)
                    for i in range(15)}
        adapted = {f"c{i}": reference_error_pct("wrn40_2", "bn_norm", 50)
                   for i in range(15)}
        assert mce(adapted, baseline) == pytest.approx(
            100 * 15.21 / 18.26, rel=1e-6)
