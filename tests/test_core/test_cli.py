"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_study_device_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "--device", "tpu"])


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "WRN-AM" in out and "5408 BN params" in out

    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "ultra96" in out and "Volta" in out

    def test_study_single_device(self, capsys):
        assert main(["study", "--device", "rpi4"]) == 0
        out = capsys.readouterr().out
        assert "Optimal configurations on rpi4" in out
        assert "ultra96" not in out

    def test_study_writes_json_and_csv(self, tmp_path, capsys):
        json_path = tmp_path / "grid.json"
        csv_path = tmp_path / "grid.csv"
        assert main(["study", "--device", "xavier_nx_gpu",
                     "--json", str(json_path), "--csv", str(csv_path)]) == 0
        payload = json.loads(json_path.read_text())
        assert payload["format"] == "repro.study_result"
        assert len(payload["records"]) == 27
        assert csv_path.read_text().startswith("model,method")

    def test_anchors_exit_code(self, capsys):
        assert main(["anchors"]) == 0
        out = capsys.readouterr().out
        assert "within tolerance" in out

    def test_scatter(self, capsys):
        assert main(["scatter", "--device", "ultra96"]) == 0
        out = capsys.readouterr().out
        assert "forward time" in out and "bn_opt" in out

    def test_insights(self, capsys):
        assert main(["insights"]) == 0
        out = capsys.readouterr().out
        assert "HOLDS" in out and "FAILS" not in out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "A1" in out and "Fig. 2" in out
