"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_study_device_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "--device", "tpu"])


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "WRN-AM" in out and "5408 BN params" in out

    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "ultra96" in out and "Volta" in out

    def test_study_single_device(self, capsys):
        assert main(["study", "--device", "rpi4"]) == 0
        out = capsys.readouterr().out
        assert "Optimal configurations on rpi4" in out
        assert "ultra96" not in out

    def test_study_writes_json_and_csv(self, tmp_path, capsys):
        json_path = tmp_path / "grid.json"
        csv_path = tmp_path / "grid.csv"
        assert main(["study", "--device", "xavier_nx_gpu",
                     "--json", str(json_path), "--csv", str(csv_path)]) == 0
        payload = json.loads(json_path.read_text())
        assert payload["format"] == "repro.study_result"
        assert len(payload["records"]) == 27
        assert csv_path.read_text().startswith("model,method")

    def test_anchors_exit_code(self, capsys):
        assert main(["anchors"]) == 0
        out = capsys.readouterr().out
        assert "within tolerance" in out

    def test_scatter(self, capsys):
        assert main(["scatter", "--device", "ultra96"]) == 0
        out = capsys.readouterr().out
        assert "forward time" in out and "bn_opt" in out

    def test_insights(self, capsys):
        assert main(["insights"]) == 0
        out = capsys.readouterr().out
        assert "HOLDS" in out and "FAILS" not in out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "A1" in out and "Fig. 2" in out


class TestNativeCommand:
    """Flag plumbing into StudyConfig (the runner itself is stubbed)."""

    @pytest.fixture
    def stub_runner(self, monkeypatch):
        from repro.core.records import MeasurementRecord, StudyResult
        captured = {}

        def fake(config, models=None, per_corruption=False, backend=None):
            captured["config"] = config
            captured["per_corruption"] = per_corruption
            captured["backend"] = backend
            return StudyResult([MeasurementRecord(
                model="wrn40_2", method="bn_norm", batch_size=50,
                device="host", error_pct=12.0, forward_time_s=0.5,
                energy_j=float("nan"),
                status=captured.pop("status", "ok"))])

        import repro.core.runner as runner_mod
        monkeypatch.setattr(runner_mod, "run_native_study", fake)
        return captured

    def test_flags_reach_study_config(self, stub_runner, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        assert main(["native", "--models", "wrn40_2", "--methods",
                     "no_adapt", "bn_norm", "--batch-sizes", "10", "50",
                     "--corruptions", "fog", "--samples", "120",
                     "--journal", str(journal), "--resume",
                     "--max-retries", "2", "--cell-timeout", "90",
                     "--workers", "3", "--seed", "7"]) == 0
        config = stub_runner["config"]
        assert config.models == ("wrn40_2",)
        assert config.methods == ("no_adapt", "bn_norm")
        assert config.batch_sizes == (10, 50)
        assert config.corruptions == ("fog",)
        assert config.stream_samples == 120
        assert config.journal == str(journal) and config.resume
        assert config.max_retries == 2 and config.cell_timeout == 90.0
        assert config.workers == 3
        assert config.seed == 7
        assert "Native study grid" in capsys.readouterr().out

    def test_resume_requires_journal(self, stub_runner, capsys):
        assert main(["native", "--resume"]) == 2
        assert "--resume requires --journal" in capsys.readouterr().err
        assert "config" not in stub_runner      # runner never invoked

    def test_broken_cells_exit_nonzero(self, stub_runner, capsys):
        stub_runner["status"] = "failed"
        assert main(["native"]) == 1
        assert "did not complete" in capsys.readouterr().err

    def test_writes_json_artifact(self, stub_runner, tmp_path):
        out = tmp_path / "grid.json"
        assert main(["native", "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["format"] == "repro.study_result"
        assert payload["records"][0]["status"] == "ok"
