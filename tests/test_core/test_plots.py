"""ASCII scatter plots."""

import pytest

from repro.core.plots import ScatterSeries, ascii_scatter, scatter_records
from repro.core.records import MeasurementRecord


def record(t, err, method="bn_norm", oom=False):
    return MeasurementRecord(model="m", method=method, batch_size=50,
                             device="d", error_pct=err,
                             forward_time_s=float("nan") if oom else t,
                             energy_j=float("nan") if oom else 1.0, oom=oom)


class TestAsciiScatter:
    def test_renders_markers_and_legend(self):
        text = ascii_scatter([ScatterSeries("a", [(1, 1), (2, 2)]),
                              ScatterSeries("b", [(3, 1)])],
                             width=20, height=5, title="demo")
        assert "demo" in text
        assert "o = a" in text and "x = b" in text
        assert text.count("o") >= 2 + 1   # points + legend

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_scatter([ScatterSeries("a", [])])

    def test_log_axis_labels(self):
        text = ascii_scatter([ScatterSeries("a", [(0.1, 1), (100, 2)])],
                             log_x=True, width=30, height=4,
                             x_label="time")
        assert "0.1" in text and "100" in text

    def test_degenerate_single_point(self):
        text = ascii_scatter([ScatterSeries("a", [(5, 5)])], width=10,
                             height=3)
        assert "o" in text

    def test_grid_dimensions(self):
        text = ascii_scatter([ScatterSeries("a", [(1, 1), (2, 2)])],
                             width=12, height=4)
        interior = [line for line in text.splitlines() if "|" in line]
        assert len(interior) == 4
        assert all(line.rstrip().endswith("|") for line in interior)


class TestScatterRecords:
    def test_groups_by_method(self):
        records = [record(1, 10), record(2, 12, method="bn_opt")]
        text = scatter_records(records, group_by=lambda r: r.method,
                               width=20, height=5)
        assert "o = bn_norm" in text and "x = bn_opt" in text

    def test_skips_oom(self):
        records = [record(1, 10), record(0, 0, oom=True)]
        text = scatter_records(records, group_by=lambda r: r.method,
                               width=20, height=5)
        assert text   # renders with the single feasible point

    def test_default_labels(self):
        text = scatter_records([record(1, 10), record(10, 12)],
                               group_by=lambda r: r.method,
                               width=20, height=5)
        assert "forward time (s)" in text and "error %" in text

    def test_study_grid_renders(self, simulated_study):
        text = scatter_records(
            simulated_study.filter(device="rpi4").records,
            group_by=lambda r: r.method, width=40, height=10)
        assert "bn_opt" in text
