"""Section IV-G insights must all hold on the simulated grid."""

import pytest

from repro.core.insights import derive_insights, format_insights


@pytest.fixture(scope="module")
def insights(simulated_study, full_summaries):
    return derive_insights(simulated_study, full_summaries)


class TestInsights:
    def test_five_insights_derived(self, insights):
        assert [i.number for i in insights] == [1, 2, 3, 5, 6]

    @pytest.mark.parametrize("number", [1, 2, 3, 5, 6])
    def test_each_insight_holds(self, insights, number):
        insight = next(i for i in insights if i.number == number)
        assert insight.holds, f"insight {number}: {insight.evidence}"

    def test_evidence_is_concrete(self, insights):
        for insight in insights:
            # every evidence string carries at least one number
            assert any(ch.isdigit() for ch in insight.evidence)

    def test_format(self, insights):
        text = format_insights(insights)
        assert "HOLDS" in text and "FAILS" not in text
        assert text.count("evidence:") == len(insights)
