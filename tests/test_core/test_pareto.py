"""Pareto-front utilities, including hypothesis properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import dominates, pareto_front
from repro.core.records import MeasurementRecord


def record(t, e, err, oom=False):
    return MeasurementRecord(model="m", method="bn_norm", batch_size=50,
                             device="d", error_pct=err,
                             forward_time_s=float("nan") if oom else t,
                             energy_j=float("nan") if oom else e, oom=oom)


class TestDominance:
    def test_strict_dominance(self):
        assert dominates(record(1, 1, 1), record(2, 2, 2))

    def test_equal_points_do_not_dominate(self):
        assert not dominates(record(1, 1, 1), record(1, 1, 1))

    def test_tradeoff_points_incomparable(self):
        fast = record(1, 5, 20)
        accurate = record(5, 1, 10)
        assert not dominates(fast, accurate)
        assert not dominates(accurate, fast)

    def test_partial_improvement_dominates(self):
        assert dominates(record(1, 2, 3), record(1, 2, 4))


class TestFront:
    def test_single_point_is_front(self):
        r = record(1, 1, 1)
        assert pareto_front([r]) == [r]

    def test_dominated_point_excluded(self):
        good, bad = record(1, 1, 1), record(2, 2, 2)
        assert pareto_front([good, bad]) == [good]

    def test_oom_points_excluded(self):
        good = record(1, 1, 1)
        assert pareto_front([good, record(0, 0, 0, oom=True)]) == [good]

    def test_duplicates_both_kept(self):
        a, b = record(1, 1, 1), record(1, 1, 1)
        assert pareto_front([a, b]) == [a, b]


points = st.lists(
    st.tuples(st.floats(0.1, 100), st.floats(0.1, 100), st.floats(0.1, 100)),
    min_size=1, max_size=12)


@given(points)
@settings(max_examples=60, deadline=None)
def test_front_members_are_mutually_nondominated(values):
    records = [record(*v) for v in values]
    front = pareto_front(records)
    assert front
    for a in front:
        for b in front:
            if a is not b:
                assert not dominates(a, b)


@given(points)
@settings(max_examples=60, deadline=None)
def test_every_excluded_point_is_dominated_by_a_front_member(values):
    records = [record(*v) for v in values]
    front = pareto_front(records)
    for r in records:
        if r not in front:
            assert any(dominates(f, r) for f in front)


@given(points)
@settings(max_examples=40, deadline=None)
def test_front_is_idempotent(values):
    records = [record(*v) for v in values]
    front = pareto_front(records)
    assert pareto_front(front) == front
