"""Real-time streaming simulation: queueing, drops, deadlines, scoring."""

import pytest

from repro.core.streaming import (
    RealTimeStream,
    max_sustainable_fps,
    simulate_realtime,
)
from repro.devices import device_info


@pytest.fixture(scope="module")
def wrn(full_summaries):
    return full_summaries["wrn40_2"]


@pytest.fixture(scope="module")
def rxt(full_summaries):
    return full_summaries["resnext29"]


class TestConfigValidation:
    def test_positive_fields(self):
        with pytest.raises(ValueError):
            RealTimeStream(fps=0, num_frames=100, batch_size=50)
        with pytest.raises(ValueError):
            RealTimeStream(fps=10, num_frames=-1, batch_size=50)
        with pytest.raises(ValueError):
            RealTimeStream(fps=10, num_frames=100, batch_size=50,
                           queue_capacity=-1)

    def test_zero_capacity_and_zero_frames_are_legal(self):
        RealTimeStream(fps=10, num_frames=100, batch_size=50,
                       queue_capacity=0)
        RealTimeStream(fps=10, num_frames=0, batch_size=50)

    def test_unknown_method(self, wrn):
        with pytest.raises(KeyError):
            simulate_realtime(wrn, device_info("rpi4"), "magic",
                              RealTimeStream(fps=10, num_frames=100,
                                             batch_size=50))


class TestKeepUpRegime:
    def test_slow_stream_no_drops_no_lates(self, wrn):
        """A stream far below the sustainable rate is fully processed."""
        device = device_info("xavier_nx_gpu")
        sustainable = max_sustainable_fps(wrn, device, "bn_norm", 50)
        stream = RealTimeStream(fps=sustainable / 4, num_frames=500,
                                batch_size=50)
        card = simulate_realtime(wrn, device, "bn_norm", stream)
        assert card.frames_dropped == 0
        assert card.batches_late == 0
        assert card.frames_processed == card.frames_total
        assert card.effective_error_pct == pytest.approx(15.21)

    def test_energy_scales_with_batches(self, wrn):
        device = device_info("xavier_nx_gpu")
        short = RealTimeStream(fps=10, num_frames=200, batch_size=50)
        long = RealTimeStream(fps=10, num_frames=400, batch_size=50)
        e_short = simulate_realtime(wrn, device, "bn_norm", short).energy_j
        e_long = simulate_realtime(wrn, device, "bn_norm", long).energy_j
        assert e_long == pytest.approx(2 * e_short)


class TestOverloadRegime:
    def test_fast_stream_on_slow_device_drops(self, wrn):
        """Ultra96 + BN-Opt (13 s/batch) cannot hold 30 fps: drops."""
        device = device_info("ultra96")
        stream = RealTimeStream(fps=30, num_frames=2000, batch_size=50,
                                queue_capacity=1)
        card = simulate_realtime(wrn, device, "bn_opt", stream)
        assert card.frames_dropped > 0
        assert card.deadline_miss_rate > 0
        # dropped frames pull effective error toward the frozen baseline
        assert 12.37 < card.effective_error_pct < 18.26

    def test_effective_error_degrades_toward_baseline_with_load(self, wrn):
        device = device_info("ultra96")
        mild = simulate_realtime(wrn, device, "bn_opt",
                                 RealTimeStream(fps=2, num_frames=1000,
                                                batch_size=50))
        heavy = simulate_realtime(wrn, device, "bn_opt",
                                  RealTimeStream(fps=50, num_frames=1000,
                                                 batch_size=50,
                                                 queue_capacity=1))
        assert heavy.effective_error_pct >= mild.effective_error_pct

    def test_oom_config_raises(self, rxt):
        with pytest.raises(MemoryError):
            simulate_realtime(rxt, device_info("ultra96"), "bn_opt",
                              RealTimeStream(fps=1, num_frames=400,
                                             batch_size=200))


class TestEdgeCases:
    """Degenerate stream configurations must not crash or divide by zero."""

    def test_zero_length_stream(self, wrn):
        card = simulate_realtime(wrn, device_info("xavier_nx_gpu"),
                                 "bn_norm",
                                 RealTimeStream(fps=10, num_frames=0,
                                                batch_size=50))
        assert card.frames_total == 0
        assert card.frames_processed == 0
        assert card.effective_error_pct == 0.0
        assert card.mean_frame_latency_s == 0.0
        assert card.wall_time_s == 0.0
        assert card.drop_rate == 0.0
        assert card.deadline_miss_rate == 0.0

    def test_stream_shorter_than_one_batch(self, wrn):
        card = simulate_realtime(wrn, device_info("xavier_nx_gpu"),
                                 "bn_norm",
                                 RealTimeStream(fps=10, num_frames=30,
                                                batch_size=50))
        assert card.batches_total == 0
        assert card.frames_total == 0

    def test_zero_queue_capacity_drops_under_any_backlog(self, wrn):
        """capacity=0: the device buffers nothing, so a stream faster
        than the service rate keeps only the batches that arrive while
        the device is idle."""
        device = device_info("ultra96")
        stream = RealTimeStream(fps=50, num_frames=2000, batch_size=50,
                                queue_capacity=0)
        card = simulate_realtime(wrn, device, "bn_opt", stream)
        assert card.frames_dropped > 0
        assert card.frames_processed + card.frames_dropped == card.frames_total
        capacious = RealTimeStream(fps=50, num_frames=2000, batch_size=50,
                                   queue_capacity=10)
        assert simulate_realtime(wrn, device, "bn_opt",
                                 capacious).frames_dropped < card.frames_dropped

    def test_burst_arrival_conserves_frames(self, wrn):
        """Arrival far above the sustainable rate: every frame is either
        processed or dropped, never lost, and rates stay in [0, 1]."""
        device = device_info("ultra96")
        sustainable = max_sustainable_fps(wrn, device, "bn_opt", 50)
        stream = RealTimeStream(fps=sustainable * 100, num_frames=1000,
                                batch_size=50, queue_capacity=1)
        card = simulate_realtime(wrn, device, "bn_opt", stream)
        assert card.frames_processed + card.frames_dropped == card.frames_total
        assert 0.0 <= card.drop_rate <= 1.0
        assert 0.0 <= card.deadline_miss_rate <= 1.0
        assert card.frames_dropped > 0
        # effective error stays between the adapted and baseline errors
        assert 12.37 <= card.effective_error_pct <= 18.26


class TestSustainableFps:
    def test_ordering_across_methods(self, wrn):
        device = device_info("xavier_nx_gpu")
        fps = {m: max_sustainable_fps(wrn, device, m, 50)
               for m in ("no_adapt", "bn_norm", "bn_opt")}
        assert fps["no_adapt"] > fps["bn_norm"] > fps["bn_opt"]

    def test_gpu_sustains_more_than_fpga(self, wrn):
        gpu = max_sustainable_fps(wrn, device_info("xavier_nx_gpu"),
                                  "bn_norm", 50)
        fpga = max_sustainable_fps(wrn, device_info("ultra96"),
                                   "bn_norm", 50)
        assert gpu > 10 * fpga

    def test_a3_point_sustains_realistic_camera(self, wrn):
        """The paper's A3 (WRN-50 + BN-Norm @ NX GPU, ~0.315 s/batch of
        50) sustains ~150 fps of throughput — its 213 ms overhead is a
        latency problem, not a throughput one."""
        fps = max_sustainable_fps(wrn, device_info("xavier_nx_gpu"),
                                  "bn_norm", 50)
        assert 120 < fps < 200


class TestFaultsAndGuard:
    """Analytic model of the robustness layer inside the simulator."""

    STREAM = dict(fps=10, num_frames=500, batch_size=50)

    def test_clean_run_has_zero_guard_counters(self, wrn):
        card = simulate_realtime(wrn, device_info("xavier_nx_gpu"),
                                 "bn_norm", RealTimeStream(**self.STREAM))
        assert card.faults_injected == 0
        assert card.rollbacks == 0
        assert card.degraded_batches == 0
        assert card.fallback_frames == 0
        assert "guard" not in card.describe()

    def test_unguarded_poisoning_corrupts_rest_of_stream(self, wrn):
        device = device_info("xavier_nx_gpu")
        clean = simulate_realtime(wrn, device, "bn_norm",
                                  RealTimeStream(**self.STREAM))
        hit = simulate_realtime(wrn, device, "bn_norm",
                                RealTimeStream(**self.STREAM),
                                fault_batches={2: "nan"})
        # batches 2..9 of 10 run at chance level (90%) instead of 15.21%
        assert hit.faults_injected == 1
        assert hit.rollbacks == 0
        expected = (2 * clean.effective_error_pct + 8 * 90.0) / 10
        assert hit.effective_error_pct == pytest.approx(expected)

    def test_unguarded_no_adapt_is_immune_to_poisoning_faults(self, wrn):
        """A frozen model has no running stats to poison: only the
        faulted batch itself is garbage."""
        device = device_info("xavier_nx_gpu")
        card = simulate_realtime(wrn, device, "no_adapt",
                                 RealTimeStream(**self.STREAM),
                                 fault_batches={2: "nan"})
        expected = (9 * 18.26 + 90.0) / 10
        assert card.effective_error_pct == pytest.approx(expected)

    def test_guard_recovers_and_counts_the_cost(self, wrn):
        device = device_info("xavier_nx_gpu")
        clean = simulate_realtime(wrn, device, "bn_norm",
                                  RealTimeStream(**self.STREAM))
        guarded = simulate_realtime(wrn, device, "bn_norm",
                                    RealTimeStream(**self.STREAM),
                                    fault_batches={2: "nan"}, guard=True)
        unguarded = simulate_realtime(wrn, device, "bn_norm",
                                      RealTimeStream(**self.STREAM),
                                      fault_batches={2: "nan"})
        # guard: only the faulted batch is lost (uniform fallback)
        expected = (9 * clean.effective_error_pct + 90.0) / 10
        assert guarded.effective_error_pct == pytest.approx(expected)
        assert guarded.effective_error_pct < unguarded.effective_error_pct
        # ladder depth for bn_norm is 2 (bn_norm -> no_adapt)
        assert guarded.rollbacks == 2
        assert guarded.degraded_batches == 1
        assert guarded.fallback_frames == 50
        # the retries cost extra energy
        assert guarded.energy_j > unguarded.energy_j
        assert "guard:" in guarded.describe()

    def test_benign_faults_do_not_poison(self, wrn):
        device = device_info("xavier_nx_gpu")
        clean = simulate_realtime(wrn, device, "bn_norm",
                                  RealTimeStream(**self.STREAM))
        card = simulate_realtime(wrn, device, "bn_norm",
                                 RealTimeStream(**self.STREAM),
                                 fault_batches={2: "truncated",
                                                4: "duplicated"})
        assert card.faults_injected == 2
        assert card.effective_error_pct == pytest.approx(
            clean.effective_error_pct)


class TestScorecard:
    def test_describe(self, wrn):
        card = simulate_realtime(wrn, device_info("xavier_nx_gpu"),
                                 "bn_norm",
                                 RealTimeStream(fps=20, num_frames=200,
                                                batch_size=50))
        text = card.describe()
        assert "frames" in text and "error" in text

    def test_latency_positive_when_processed(self, wrn):
        card = simulate_realtime(wrn, device_info("rpi4"), "bn_norm",
                                 RealTimeStream(fps=5, num_frames=300,
                                                batch_size=50))
        assert card.mean_frame_latency_s > 0
        assert card.wall_time_s > 0
