"""Property-based tests for the study harness and device models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objectives import WeightCase, score_records, select_best
from repro.core.records import MeasurementRecord, StudyResult
from repro.core.streaming import RealTimeStream, simulate_realtime
from repro.devices import device_info, forward_latency
from repro.devices.energy import energy_per_batch


def record(t, e, err):
    return MeasurementRecord(model="m", method="bn_norm", batch_size=50,
                             device="d", error_pct=err, forward_time_s=t,
                             energy_j=e)


positive = st.floats(0.01, 1000.0)
records_strategy = st.lists(
    st.tuples(positive, positive, st.floats(0.1, 100.0)),
    min_size=1, max_size=10)
weights_strategy = st.tuples(st.floats(0.01, 1.0), st.floats(0.01, 1.0),
                             st.floats(0.01, 1.0))


@given(records_strategy, weights_strategy, st.sampled_from(["raw", "max",
                                                            "minmax"]))
@settings(max_examples=80, deadline=None)
def test_selection_is_argmin_of_scores(values, weights, scheme):
    total = sum(weights)
    case = WeightCase("w", *(w / total for w in weights))
    result = StudyResult([record(*v) for v in values])
    best = select_best(result, case, scheme)
    scores = score_records(result.records, case, scheme)
    assert scores[result.records.index(best)] == pytest.approx(min(scores))


@given(records_strategy, weights_strategy)
@settings(max_examples=60, deadline=None)
def test_dominated_record_never_selected(values, weights):
    total = sum(weights)
    case = WeightCase("w", *(w / total for w in weights))
    better = record(*[v * 0.5 for v in values[0]])
    worse = record(*[v * 2.0 for v in values[0]])
    result = StudyResult([better, worse])
    assert select_best(result, case, "raw") is better


@given(st.integers(1, 400), st.integers(8, 256),
       st.floats(0.5, 200.0), st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_streaming_conserves_frames(num_batches, batch_size, fps, capacity):
    """processed + dropped == total, for any stream configuration."""
    from repro.models import build_model, summarize
    summary = _cached_wrn()
    stream = RealTimeStream(fps=fps, num_frames=num_batches * batch_size,
                            batch_size=batch_size, queue_capacity=capacity)
    card = simulate_realtime(summary, device_info("rpi4"), "bn_norm", stream,
                             adapted_error_pct=15.0, baseline_error_pct=18.0)
    assert card.frames_processed + card.frames_dropped == card.frames_total
    assert 15.0 - 1e-6 <= card.effective_error_pct <= 18.0 + 1e-6
    assert card.batches_late <= card.batches_total


_WRN_SUMMARY = None


def _cached_wrn():
    global _WRN_SUMMARY
    if _WRN_SUMMARY is None:
        from repro.models import build_model, summarize
        _WRN_SUMMARY = summarize(build_model("wrn40_2", "full"),
                                 name="wrn40_2")
    return _WRN_SUMMARY


@given(st.integers(1, 500), st.sampled_from(["ultra96", "rpi4",
                                             "xavier_nx_gpu"]))
@settings(max_examples=40, deadline=None)
def test_latency_and_energy_positive_and_monotone_in_batch(batch, device_name):
    summary = _cached_wrn()
    device = device_info(device_name)
    small = forward_latency(summary, batch, device, adapts_bn_stats=True,
                            does_backward=True)
    large = forward_latency(summary, batch + 1, device, adapts_bn_stats=True,
                            does_backward=True)
    assert 0 < small.forward_time_s < large.forward_time_s
    assert 0 < energy_per_batch(small, device) < energy_per_batch(large, device)


@given(st.floats(0.0, 0.95))
@settings(max_examples=30, deadline=None)
def test_prune_sparsity_close_to_target(target):
    from repro.compress import magnitude_prune, sparsity
    from repro.models import build_model
    model = build_model("wrn40_2", "tiny")
    report = magnitude_prune(model, target)
    assert abs(report.achieved_sparsity - target) < 0.05
    assert sparsity(model) == pytest.approx(report.achieved_sparsity)


@given(st.integers(2, 16), st.integers(1, 64))
@settings(max_examples=40, deadline=None)
def test_quantize_preserves_sign_and_bound(bits, size):
    from repro.compress import quantize_tensor
    rng = np.random.default_rng(size)
    values = rng.standard_normal(size).astype(np.float32)
    out = quantize_tensor(values, bits)
    # uniform quantization never exceeds the input range; the fp16
    # round trip (bits=16) may round a magnitude up by half a ulp
    # (relative 2^-11)
    max_abs = float(np.abs(values).max())
    assert np.abs(out).max() <= max_abs * (1 + 2 ** -11) + 1e-6
    nonzero = out != 0
    assert np.array_equal(np.sign(out[nonzero]), np.sign(values[nonzero]))
