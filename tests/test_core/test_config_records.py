"""Study configuration, case labels, and measurement records."""


import pytest

from repro.core.config import Case, StudyConfig, case_label
from repro.core.records import MeasurementRecord, StudyResult


def record(model="wrn40_2", method="bn_norm", batch=50, device="rpi4",
           error=15.0, t=1.0, e=2.0, oom=False):
    return MeasurementRecord(model=model, method=method, batch_size=batch,
                             device=device, error_pct=error,
                             forward_time_s=float("nan") if oom else t,
                             energy_j=float("nan") if oom else e, oom=oom)


class TestConfig:
    def test_default_grid_is_paper_grid(self):
        cases = StudyConfig().cases()
        assert len(cases) == 3 * 3 * 3 * 4   # models x methods x batches x devices

    def test_cases_cover_axes(self):
        config = StudyConfig(models=("wrn40_2",), devices=("rpi4",))
        cases = config.cases()
        assert len(cases) == 9
        assert {c.method for c in cases} == {"no_adapt", "bn_norm", "bn_opt"}

    def test_case_label_paper_style(self):
        label = case_label("wrn40_2", 50, "bn_norm", "xavier_nx_gpu")
        assert label == "WRN-AM-50 + BN-Norm @ xavier_nx_gpu"

    def test_case_label_partial(self):
        assert case_label("resnext29", 200) == "RXT-AM-200"

    def test_case_dataclass_label(self):
        case = Case("resnet18", "bn_opt", 100, "ultra96")
        assert "R18-AM-AT-100" in case.label


class TestStudyResult:
    def test_filter_by_axes(self):
        result = StudyResult([record(device="rpi4"), record(device="ultra96")])
        assert len(result.filter(device="rpi4")) == 1

    def test_filter_excludes_oom(self):
        result = StudyResult([record(), record(oom=True)])
        assert len(result.filter(include_oom=False)) == 1
        assert len(result.feasible()) == 1

    def test_one_returns_unique(self):
        result = StudyResult([record()])
        r = result.one("wrn40_2", "bn_norm", 50)
        assert r.error_pct == 15.0

    def test_one_raises_on_missing(self):
        with pytest.raises(LookupError):
            StudyResult([]).one("wrn40_2", "bn_norm", 50)

    def test_one_raises_on_ambiguous(self):
        result = StudyResult([record(), record()])
        with pytest.raises(LookupError):
            result.one("wrn40_2", "bn_norm", 50)

    def test_mean(self):
        result = StudyResult([record(t=1.0), record(t=3.0)])
        assert result.mean(lambda r: r.forward_time_s) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            StudyResult([]).mean(lambda r: r.forward_time_s)

    def test_objectives_tuple(self):
        r = record(t=1.5, e=2.5, error=10.0)
        assert r.objectives == (1.5, 2.5, 10.0)

    def test_table_marks_oom(self):
        text = StudyResult([record(oom=True)]).to_table("title")
        assert "OOM" in text and "title" in text

    def test_iteration(self):
        result = StudyResult([record(), record()])
        assert len(list(result)) == 2
