"""Study-result serialization: JSON round trip and CSV export."""

import json
import math

import pytest

from repro.core import io as study_io
from repro.core.records import MeasurementRecord, StudyResult


def record(oom=False, **kw):
    defaults = dict(model="wrn40_2", method="bn_norm", batch_size=50,
                    device="rpi4", error_pct=15.21,
                    forward_time_s=float("nan") if oom else 2.59,
                    energy_j=float("nan") if oom else 5.95,
                    memory_gb=0.5, oom=oom, adapt_overhead_s=0.55)
    defaults.update(kw)
    return MeasurementRecord(**defaults)


class TestJsonRoundTrip:
    def test_round_trip_preserves_fields(self):
        original = StudyResult([record(), record(method="bn_opt")])
        restored = study_io.loads(study_io.dumps(original))
        assert len(restored) == 2
        for a, b in zip(original.records, restored.records):
            assert a == b

    def test_oom_encoded_as_null_and_restored_as_nan(self):
        text = study_io.dumps(StudyResult([record(oom=True)]))
        payload = json.loads(text)
        assert payload["records"][0]["forward_time_s"] is None
        restored = study_io.loads(text)
        assert math.isnan(restored.records[0].forward_time_s)
        assert restored.records[0].oom

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "study.json"
        original = StudyResult([record()])
        study_io.save_json(original, path)
        assert study_io.load_json(path).records == original.records

    def test_rejects_foreign_document(self):
        with pytest.raises(ValueError):
            study_io.loads(json.dumps({"format": "something_else"}))

    def test_rejects_wrong_version(self):
        payload = json.loads(study_io.dumps(StudyResult([record()])))
        payload["version"] = 99
        with pytest.raises(ValueError):
            study_io.loads(json.dumps(payload))

    def test_rejects_unknown_fields(self):
        payload = json.loads(study_io.dumps(StudyResult([record()])))
        payload["records"][0]["extra"] = 1
        with pytest.raises(ValueError):
            study_io.loads(json.dumps(payload))

    def test_rejects_non_list_records(self):
        payload = json.loads(study_io.dumps(StudyResult([record()])))
        payload["records"] = {"oops": "a dict"}
        with pytest.raises(ValueError, match="'records' must be a list"):
            study_io.loads(json.dumps(payload))

    def test_status_and_attempts_round_trip(self):
        original = StudyResult([record(status="failed", attempts=3,
                                       error_pct=float("nan"))])
        restored = study_io.loads(study_io.dumps(original))
        assert restored.records[0].status == "failed"
        assert restored.records[0].attempts == 3
        assert math.isnan(restored.records[0].error_pct)

    def test_full_grid_round_trip(self, simulated_study):
        restored = study_io.loads(study_io.dumps(simulated_study))
        assert len(restored) == len(simulated_study)
        assert sum(r.oom for r in restored) == 3


class TestCsv:
    def test_header_and_rows(self):
        text = study_io.to_csv(StudyResult([record(), record(oom=True)]))
        lines = text.strip().splitlines()
        assert lines[0].startswith("model,method,batch_size")
        assert len(lines) == 3

    def test_oom_costs_blank(self):
        text = study_io.to_csv(StudyResult([record(oom=True)]))
        row = text.strip().splitlines()[1]
        assert ",,," in row or ",," in row

    def test_save_csv(self, tmp_path):
        path = tmp_path / "study.csv"
        study_io.save_csv(StudyResult([record()]), path)
        assert path.read_text().count("\n") == 2

    def test_failed_record_round_trips_through_csv(self, tmp_path):
        path = tmp_path / "study.csv"
        failed = record(status="failed", attempts=2,
                        error_pct=float("nan"))
        study_io.save_csv(StudyResult([failed, record()]), path)
        restored = study_io.load_csv(path)
        assert restored.records[0].status == "failed"
        assert restored.records[0].attempts == 2
        assert math.isnan(restored.records[0].error_pct)
        assert restored.records[1] == record()
