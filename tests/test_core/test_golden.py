"""Golden regression pins: reference-grid values and objective winners.

These values are *pinned outputs*, not derived expectations: a failure
here means a code change silently moved a number every downstream figure
and selection depends on.  If the change is intentional, update the
constants in the same commit and say why.
"""

import pytest

from repro.core.objectives import WEIGHT_CASES, select_best
from repro.core.reference import reference_error_pct

#: (model, method) -> error % at batch 50/100/200, straight from the
#: paper grid (mobilenet rows partially reconstructed)
GOLDEN_REFERENCE = {
    ("wrn40_2", "no_adapt"): (18.26, 18.26, 18.26),
    ("wrn40_2", "bn_norm"): (15.21, 14.60, 14.35),
    ("wrn40_2", "bn_opt"): (12.37, 11.85, 11.60),
    ("resnet18", "no_adapt"): (19.40, 19.40, 19.40),
    ("resnet18", "bn_norm"): (15.40, 14.80, 14.55),
    ("resnet18", "bn_opt"): (12.97, 12.50, 12.20),
    ("resnext29", "no_adapt"): (17.55, 17.55, 17.55),
    ("resnext29", "bn_norm"): (14.05, 13.50, 13.00),
    ("resnext29", "bn_opt"): (11.30, 10.65, 10.15),
    ("mobilenet_v2", "no_adapt"): (81.20, 81.20, 81.20),
    ("mobilenet_v2", "bn_norm"): (40.50, 38.00, 36.20),
    ("mobilenet_v2", "bn_opt"): (33.00, 30.00, 28.10),
}

#: (scheme, weight case) -> winning (model, method, batch_size, device)
#: of the full simulated study grid
GOLDEN_WINNERS = {
    ("raw", "equal"): ("wrn40_2", "bn_norm", 50, "xavier_nx_gpu"),
    ("raw", "performance"): ("wrn40_2", "no_adapt", 50, "xavier_nx_gpu"),
    ("raw", "accuracy"): ("wrn40_2", "bn_opt", 50, "xavier_nx_gpu"),
    ("raw", "energy"): ("wrn40_2", "no_adapt", 50, "xavier_nx_gpu"),
    ("minmax", "equal"): ("wrn40_2", "bn_opt", 100, "xavier_nx_gpu"),
    ("minmax", "performance"): ("wrn40_2", "bn_opt", 50, "xavier_nx_gpu"),
    ("minmax", "accuracy"): ("resnext29", "bn_opt", 100, "xavier_nx_gpu"),
    ("minmax", "energy"): ("wrn40_2", "bn_opt", 50, "xavier_nx_gpu"),
}


class TestGoldenReferenceGrid:
    @pytest.mark.parametrize("model,method", sorted(GOLDEN_REFERENCE))
    def test_grid_values_pinned(self, model, method):
        expected = GOLDEN_REFERENCE[(model, method)]
        actual = tuple(reference_error_pct(model, method, batch)
                       for batch in (50, 100, 200))
        assert actual == pytest.approx(expected, abs=1e-9)

    def test_grid_covers_all_golden_cells(self):
        assert len(GOLDEN_REFERENCE) == 4 * 3


class TestGoldenObjectiveWinners:
    @pytest.mark.parametrize("scheme,case", sorted(GOLDEN_WINNERS))
    def test_winner_pinned(self, simulated_study, scheme, case):
        best = select_best(simulated_study, WEIGHT_CASES[case], scheme)
        assert (best.model, best.method, best.batch_size, best.device) \
            == GOLDEN_WINNERS[(scheme, case)]

    def test_every_weight_case_pinned(self):
        cases = {case for _, case in GOLDEN_WINNERS}
        assert cases == set(WEIGHT_CASES)
