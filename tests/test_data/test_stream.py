"""Streaming protocol: corrupted streams and batch iteration."""

import numpy as np
import pytest

from repro.data.stream import PAPER_BATCH_SIZES, CorruptionStream, iter_batches
from repro.data.synthetic import make_synth_cifar


@pytest.fixture(scope="module")
def dataset():
    return make_synth_cifar(130, size=16, seed=0)


class TestIterBatches:
    def test_batches_in_order(self, dataset):
        batches = list(iter_batches(dataset.images, dataset.labels, 50))
        assert len(batches) == 2
        np.testing.assert_array_equal(batches[0][0], dataset.images[:50])
        np.testing.assert_array_equal(batches[1][1], dataset.labels[50:100])

    def test_drop_last_true_drops_remainder(self, dataset):
        batches = list(iter_batches(dataset.images, dataset.labels, 50))
        assert sum(len(lbl) for _, lbl in batches) == 100

    def test_drop_last_false_keeps_remainder(self, dataset):
        batches = list(iter_batches(dataset.images, dataset.labels, 50,
                                    drop_last=False))
        assert sum(len(lbl) for _, lbl in batches) == 130
        assert len(batches[-1][1]) == 30


class TestCorruptionStream:
    def test_clean_stream_is_identity(self, dataset):
        stream = CorruptionStream.from_dataset(dataset, "clean")
        np.testing.assert_array_equal(stream.images, dataset.images)

    def test_corrupted_stream_differs(self, dataset):
        stream = CorruptionStream.from_dataset(dataset, "fog", severity=5)
        assert not np.array_equal(stream.images, dataset.images)
        assert stream.images.shape == dataset.images.shape

    def test_labels_preserved(self, dataset):
        stream = CorruptionStream.from_dataset(dataset, "gaussian_noise")
        np.testing.assert_array_equal(stream.labels, dataset.labels)

    def test_deterministic(self, dataset):
        a = CorruptionStream.from_dataset(dataset, "snow", seed=3)
        b = CorruptionStream.from_dataset(dataset, "snow", seed=3)
        np.testing.assert_array_equal(a.images, b.images)

    def test_unknown_corruption_raises(self, dataset):
        with pytest.raises(KeyError):
            CorruptionStream.from_dataset(dataset, "sepia")

    def test_num_batches(self, dataset):
        stream = CorruptionStream.from_dataset(dataset, "clean")
        assert stream.num_batches(50) == 2
        assert len(stream) == 130

    def test_paper_batch_sizes_constant(self):
        assert PAPER_BATCH_SIZES == (50, 100, 200)

    def test_stream_does_not_mutate_dataset(self, dataset):
        before = dataset.images.copy()
        CorruptionStream.from_dataset(dataset, "impulse_noise")
        np.testing.assert_array_equal(dataset.images, before)
