"""CIFAR-10-C corruption suite: 19 types x 5 severities."""

import numpy as np
import pytest

from repro.data.corruptions import (
    CORRUPTION_NAMES,
    CORRUPTIONS,
    SEVERITIES,
    apply_corruption,
    corrupt_batch,
)
from repro.data.synthetic import make_synth_cifar


@pytest.fixture(scope="module")
def image():
    return make_synth_cifar(1, size=32, seed=0).images[0]


class TestSuiteContract:
    def test_nineteen_corruptions(self):
        assert len(CORRUPTION_NAMES) == 19

    def test_expected_families_present(self):
        expected = {"gaussian_noise", "shot_noise", "impulse_noise",
                    "defocus_blur", "glass_blur", "motion_blur", "zoom_blur",
                    "snow", "frost", "fog", "brightness", "contrast",
                    "elastic_transform", "pixelate", "jpeg_compression",
                    "speckle_noise", "gaussian_blur", "spatter", "saturate"}
        assert set(CORRUPTION_NAMES) == expected

    @pytest.mark.parametrize("name", CORRUPTION_NAMES)
    def test_shape_range_dtype(self, image, name):
        out = apply_corruption(image, name, severity=5, seed=0)
        assert out.shape == image.shape
        assert out.dtype == np.float32
        assert out.min() >= 0.0 and out.max() <= 1.0

    @pytest.mark.parametrize("name", CORRUPTION_NAMES)
    def test_deterministic(self, image, name):
        a = apply_corruption(image, name, severity=3, seed=5)
        b = apply_corruption(image, name, severity=3, seed=5)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("name", CORRUPTION_NAMES)
    def test_actually_changes_the_image(self, image, name):
        out = apply_corruption(image, name, severity=5, seed=0)
        assert np.abs(out - image).mean() > 1e-3

    @pytest.mark.parametrize("name", CORRUPTION_NAMES)
    def test_severity_monotone_on_average(self, name):
        """Across several images, severity 5 must distort more than 1."""
        images = make_synth_cifar(6, size=32, seed=3).images
        def mean_shift(severity):
            return np.mean([np.abs(apply_corruption(im, name, severity, seed=9)
                                   - im).mean() for im in images])
        assert mean_shift(5) > mean_shift(1)

    def test_unknown_corruption_raises(self, image):
        with pytest.raises(KeyError):
            apply_corruption(image, "vignette")

    def test_bad_severity_raises(self, image):
        with pytest.raises(ValueError):
            apply_corruption(image, "gaussian_noise", severity=6)

    def test_batch_requires_4d(self, image):
        with pytest.raises(ValueError):
            corrupt_batch(image, "fog")

    def test_single_requires_3d(self):
        with pytest.raises(ValueError):
            apply_corruption(np.zeros((1, 3, 8, 8), dtype=np.float32), "fog")


class TestBatchAPI:
    def test_batch_uses_per_image_seeds(self):
        images = make_synth_cifar(2, size=16, seed=0).images
        # duplicate image -> different noise per position in the batch
        batch = np.stack([images[0], images[0]])
        out = corrupt_batch(batch, "gaussian_noise", severity=5, seed=0)
        assert not np.array_equal(out[0], out[1])

    def test_batch_deterministic(self):
        images = make_synth_cifar(3, size=16, seed=0).images
        a = corrupt_batch(images, "fog", seed=4)
        b = corrupt_batch(images, "fog", seed=4)
        np.testing.assert_array_equal(a, b)


class TestSpecificSemantics:
    def test_brightness_raises_mean(self, image):
        out = apply_corruption(image, "brightness", severity=5)
        assert out.mean() > image.mean()

    def test_contrast_reduces_std(self, image):
        out = apply_corruption(image, "contrast", severity=5)
        assert out.std() < image.std()

    def test_blur_reduces_high_frequency_energy(self, image):
        def hf_energy(im):
            return np.abs(np.diff(im, axis=-1)).mean()
        out = apply_corruption(image, "defocus_blur", severity=5)
        assert hf_energy(out) < hf_energy(image)

    def test_pixelate_creates_blocks(self, image):
        out = apply_corruption(image, "pixelate", severity=5)
        # nearest-neighbour upsampling duplicates adjacent columns somewhere
        repeats = (np.abs(np.diff(out, axis=-1)) < 1e-7).mean()
        baseline = (np.abs(np.diff(image, axis=-1)) < 1e-7).mean()
        assert repeats > baseline

    def test_jpeg_high_quality_close_to_identity(self, image):
        out = apply_corruption(image, "jpeg_compression", severity=1)
        worst = apply_corruption(image, "jpeg_compression", severity=5)
        assert np.abs(out - image).mean() < np.abs(worst - image).mean()

    def test_impulse_noise_sets_extreme_pixels(self, image):
        out = apply_corruption(image, "impulse_noise", severity=5, seed=0)
        changed = np.abs(out - image).max(axis=0) > 0.2
        extremes = (out.min(axis=0) <= 1e-6) | (out.max(axis=0) >= 1 - 1e-6)
        assert (changed & extremes).sum() > 0

    def test_snow_brightens(self, image):
        out = apply_corruption(image, "snow", severity=5)
        assert out.mean() > image.mean()

    def test_shot_noise_preserves_mean_roughly(self, image):
        out = apply_corruption(image, "shot_noise", severity=3, seed=1)
        assert abs(out.mean() - image.mean()) < 0.05

    def test_speckle_scales_with_signal(self):
        """Multiplicative noise must distort bright images more than dark."""
        dark = np.full((3, 16, 16), 0.1, dtype=np.float32)
        bright = np.full((3, 16, 16), 0.8, dtype=np.float32)
        d = np.abs(apply_corruption(dark, "speckle_noise", 3, seed=2) - dark)
        b = np.abs(apply_corruption(bright, "speckle_noise", 3, seed=2) - bright)
        assert b.mean() > d.mean()

    def test_gaussian_blur_reduces_high_frequency_energy(self, image):
        def hf_energy(im):
            return np.abs(np.diff(im, axis=-1)).mean()
        out = apply_corruption(image, "gaussian_blur", severity=5)
        assert hf_energy(out) < hf_energy(image)

    def test_spatter_mud_darkens_more_than_water(self, image):
        water = apply_corruption(image, "spatter", severity=2, seed=7)
        mud = apply_corruption(image, "spatter", severity=5, seed=7)
        assert mud.mean() < water.mean()

    def test_saturate_mild_desaturates_harsh_oversaturates(self, image):
        def chroma(im):
            return (im - im.mean(axis=0, keepdims=True)).std()
        assert chroma(apply_corruption(image, "saturate", 1)) < chroma(image)
        assert chroma(apply_corruption(image, "saturate", 5)) > chroma(image)
