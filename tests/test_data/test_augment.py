"""AugMix augmentation pipeline."""

import numpy as np
import pytest

from repro.data.augment import AUGMENTATION_OPS, augmix, augmix_batch
from repro.data.synthetic import make_synth_cifar


@pytest.fixture(scope="module")
def image():
    return make_synth_cifar(1, size=16, seed=0).images[0]


class TestAugmix:
    def test_shape_and_range(self, image):
        out = augmix(image, np.random.default_rng(0))
        assert out.shape == image.shape
        assert out.min() >= 0.0 and out.max() <= 1.0
        assert out.dtype == np.float32

    def test_deterministic_given_rng_state(self, image):
        a = augmix(image, np.random.default_rng(5))
        b = augmix(image, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_changes_image(self, image):
        out = augmix(image, np.random.default_rng(1))
        assert np.abs(out - image).mean() > 1e-4

    def test_width_one_single_chain(self, image):
        out = augmix(image, np.random.default_rng(2), width=1)
        assert out.shape == image.shape

    def test_fixed_depth(self, image):
        out = augmix(image, np.random.default_rng(3), depth=2)
        assert out.shape == image.shape

    def test_each_op_is_safe(self, image):
        rng = np.random.default_rng(0)
        for op in AUGMENTATION_OPS:
            out = np.clip(op(image.copy(), rng), 0, 1)
            assert out.shape == image.shape
            assert np.isfinite(out).all()

    def test_batch_api(self):
        images = make_synth_cifar(4, size=16, seed=0).images
        out = augmix_batch(images, seed=0)
        assert out.shape == images.shape
        repeat = augmix_batch(images, seed=0)
        np.testing.assert_array_equal(out, repeat)

    def test_augmentations_exclude_test_corruption_statistics(self, image):
        """AugMix must not simply reproduce a test corruption: the mixed
        image should stay closer to the original than a severity-5
        corruption does on average (mild, realism-preserving ops)."""
        from repro.data.corruptions import apply_corruption
        rng = np.random.default_rng(0)
        aug_dist = np.mean([np.abs(augmix(image, rng) - image).mean()
                            for _ in range(8)])
        corr_dist = np.abs(apply_corruption(image, "snow", 5) - image).mean()
        assert aug_dist < corr_dist
