"""Batch-level property tests for the corruption suite.

The single-image contract is covered in ``test_property_data.py``; the
robustness layer feeds whole *batches* through :func:`corrupt_batch`, so
these pin the batch-level invariants for every corruption type: shape,
dtype, and pixel-range preservation, seed determinism, per-image seed
decorrelation, and agreement with the per-image path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.corruptions import (
    CORRUPTION_NAMES,
    SEVERITIES,
    apply_corruption,
    corrupt_batch,
)
from repro.data.synthetic import make_synth_cifar


@pytest.fixture(scope="module")
def batch():
    return make_synth_cifar(6, size=16, seed=1).images


@pytest.mark.parametrize("name", CORRUPTION_NAMES)
class TestBatchContract:
    def test_shape_dtype_range_preserved(self, batch, name):
        for severity in (1, 5):
            out = corrupt_batch(batch, name, severity=severity, seed=0)
            assert out.shape == batch.shape
            assert out.dtype == batch.dtype == np.float32
            assert np.isfinite(out).all()
            assert out.min() >= 0.0 and out.max() <= 1.0

    def test_seed_determinism(self, batch, name):
        a = corrupt_batch(batch, name, severity=3, seed=42)
        b = corrupt_batch(batch, name, severity=3, seed=42)
        np.testing.assert_array_equal(a, b)

    def test_matches_per_image_application(self, batch, name):
        """corrupt_batch(seed) is exactly apply_corruption(seed + i) per
        image — the contract the streaming layer relies on."""
        out = corrupt_batch(batch, name, severity=4, seed=7)
        for i, image in enumerate(batch):
            np.testing.assert_array_equal(
                out[i], apply_corruption(image, name, severity=4, seed=7 + i))

    def test_input_batch_not_mutated(self, batch, name):
        before = batch.copy()
        corrupt_batch(batch, name, severity=5, seed=0)
        np.testing.assert_array_equal(batch, before)


@pytest.mark.parametrize("name", ["gaussian_noise", "shot_noise",
                                  "impulse_noise", "glass_blur"])
def test_stochastic_corruptions_decorrelate_per_image(name):
    """Identical frames in one batch must not receive identical noise
    (each image draws from its own seed)."""
    frame = make_synth_cifar(1, size=16, seed=2).images[0]
    batch = np.stack([frame, frame])
    out = corrupt_batch(batch, name, severity=5, seed=0)
    assert not np.array_equal(out[0], out[1])


def test_non_nchw_batch_rejected():
    with pytest.raises(ValueError, match="NCHW"):
        corrupt_batch(np.zeros((3, 16, 16), dtype=np.float32), "fog")


@given(st.sampled_from(CORRUPTION_NAMES), st.sampled_from(SEVERITIES),
       st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_batch_contract_for_any_severity_and_seed(name, severity, seed):
    images = make_synth_cifar(2, size=12, seed=0).images
    out = corrupt_batch(images, name, severity=severity, seed=seed)
    assert out.shape == images.shape
    assert out.dtype == np.float32
    assert np.isfinite(out).all()
    assert out.min() >= 0.0 and out.max() <= 1.0
