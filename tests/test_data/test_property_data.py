"""Property-based tests for the data substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.corruptions import CORRUPTION_NAMES, apply_corruption

unit_floats = st.floats(min_value=0.0, max_value=1.0,
                        allow_nan=False, allow_infinity=False, width=32)


def random_images():
    return arrays(np.float32, st.tuples(st.just(3), st.integers(8, 20),
                                        st.integers(8, 20)),
                  elements=unit_floats)


@given(random_images(), st.sampled_from(CORRUPTION_NAMES),
       st.integers(1, 5), st.integers(0, 1000))
@settings(max_examples=60, deadline=None)
def test_corruptions_preserve_contract_on_any_image(image, name, severity, seed):
    """For arbitrary unit-range images of arbitrary (small) size, every
    corruption must preserve shape, dtype, value range, and finiteness."""
    out = apply_corruption(image, name, severity=severity, seed=seed)
    assert out.shape == image.shape
    assert out.dtype == np.float32
    assert np.isfinite(out).all()
    assert out.min() >= 0.0
    assert out.max() <= 1.0


@given(random_images(), st.sampled_from(CORRUPTION_NAMES), st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_corruptions_are_pure_functions(image, name, seed):
    before = image.copy()
    apply_corruption(image, name, severity=5, seed=seed)
    np.testing.assert_array_equal(image, before)


@given(st.integers(1, 40), st.integers(8, 20), st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_synthetic_generator_contract(n, size, seed):
    from repro.data.synthetic import make_synth_cifar
    ds = make_synth_cifar(n, size=size, seed=seed)
    assert ds.images.shape == (n, 3, size, size)
    assert np.isfinite(ds.images).all()
    assert 0.0 <= ds.images.min() and ds.images.max() <= 1.0
    assert ((ds.labels >= 0) & (ds.labels < 10)).all()
