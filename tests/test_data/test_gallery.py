"""Corruption gallery: PGM round trips and ASCII previews."""

import numpy as np
import pytest

from repro.data.gallery import (
    ascii_preview,
    load_pgm,
    save_pgm,
    to_grayscale,
    write_gallery,
)
from repro.data.synthetic import make_synth_cifar


@pytest.fixture(scope="module")
def image():
    return make_synth_cifar(1, size=32, seed=0).images[0]


class TestGrayscale:
    def test_weights_sum_to_one(self, image):
        gray = to_grayscale(image)
        assert gray.shape == (32, 32)
        assert 0.0 <= gray.min() and gray.max() <= 1.0

    def test_white_maps_to_one(self):
        white = np.ones((3, 4, 4), dtype=np.float32)
        np.testing.assert_allclose(to_grayscale(white), 1.0, atol=1e-6)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            to_grayscale(np.zeros((4, 4), dtype=np.float32)[None])


class TestPgm:
    def test_round_trip(self, image, tmp_path):
        path = tmp_path / "img.pgm"
        save_pgm(image, path)
        restored = load_pgm(path)
        np.testing.assert_allclose(restored, to_grayscale(image), atol=1 / 255)

    def test_gray_input_accepted(self, tmp_path):
        gray = np.linspace(0, 1, 16, dtype=np.float32).reshape(4, 4)
        path = tmp_path / "gray.pgm"
        save_pgm(gray, path)
        np.testing.assert_allclose(load_pgm(path), gray, atol=1 / 255)

    def test_header(self, image, tmp_path):
        path = tmp_path / "img.pgm"
        save_pgm(image, path)
        assert path.read_bytes().startswith(b"P5\n32 32\n255\n")

    def test_load_rejects_non_pgm(self, tmp_path):
        path = tmp_path / "not.pgm"
        path.write_bytes(b"hello")
        with pytest.raises(ValueError):
            load_pgm(path)


class TestAsciiPreview:
    def test_dimensions(self, image):
        art = ascii_preview(image, width=16)
        lines = art.splitlines()
        assert 8 <= len(lines) <= 32
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_dark_vs_bright(self):
        dark = np.zeros((3, 8, 8), dtype=np.float32)
        bright = np.ones((3, 8, 8), dtype=np.float32)
        assert set(ascii_preview(dark)) <= {" ", "\n"}
        assert "@" in ascii_preview(bright)


class TestGallery:
    def test_writes_all_files(self, image, tmp_path):
        paths = write_gallery(image, tmp_path, corruptions=("fog", "snow"))
        assert len(paths) == 3
        assert all(p.exists() for p in paths)
        assert (tmp_path / "clean.pgm").exists()
        assert (tmp_path / "fog_s5.pgm").exists()

    def test_default_covers_all_corruptions(self, image, tmp_path):
        paths = write_gallery(image, tmp_path)
        assert len(paths) == 20   # clean + 19 corruptions

    def test_corrupted_files_differ_from_clean(self, image, tmp_path):
        write_gallery(image, tmp_path, corruptions=("gaussian_noise",))
        clean = load_pgm(tmp_path / "clean.pgm")
        noisy = load_pgm(tmp_path / "gaussian_noise_s5.pgm")
        assert np.abs(clean - noisy).mean() > 0.01
