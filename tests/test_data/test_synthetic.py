"""SynthCIFAR generator: determinism, balance, ranges, class structure."""

import numpy as np

from repro.data.synthetic import NUM_CLASSES, SynthCIFAR, make_synth_cifar


class TestGeneration:
    def test_shapes_and_dtype(self):
        ds = make_synth_cifar(20, size=16, seed=0)
        assert ds.images.shape == (20, 3, 16, 16)
        assert ds.images.dtype == np.float32
        assert ds.labels.shape == (20,)
        assert ds.labels.dtype == np.int64

    def test_value_range(self):
        ds = make_synth_cifar(50, size=16, seed=1)
        assert ds.images.min() >= 0.0
        assert ds.images.max() <= 1.0

    def test_deterministic(self):
        a = make_synth_cifar(30, size=16, seed=7)
        b = make_synth_cifar(30, size=16, seed=7)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = make_synth_cifar(30, size=16, seed=1)
        b = make_synth_cifar(30, size=16, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_class_balance(self):
        ds = make_synth_cifar(100, size=12, seed=0, class_balance=True)
        counts = np.bincount(ds.labels, minlength=NUM_CLASSES)
        assert counts.min() == counts.max() == 10

    def test_unbalanced_mode_uses_all_classes_eventually(self):
        ds = make_synth_cifar(500, size=8, seed=0, class_balance=False)
        assert len(np.unique(ds.labels)) == NUM_CLASSES

    def test_len_and_subset(self):
        ds = make_synth_cifar(40, size=8, seed=0)
        assert len(ds) == 40
        sub = ds.subset(10)
        assert len(sub) == 10
        np.testing.assert_array_equal(sub.images, ds.images[:10])


class TestClassStructure:
    def test_classes_are_visually_distinct(self):
        """Mean images of different classes should differ substantially —
        otherwise no classifier could learn the task."""
        ds = make_synth_cifar(400, size=16, seed=0)
        means = np.stack([ds.images[ds.labels == c].mean(axis=0)
                          for c in range(NUM_CLASSES)])
        # pairwise distance between class means
        dists = []
        for i in range(NUM_CLASSES):
            for j in range(i + 1, NUM_CLASSES):
                dists.append(np.abs(means[i] - means[j]).mean())
        assert min(dists) > 0.01

    def test_instances_within_class_vary(self):
        ds = make_synth_cifar(60, size=16, seed=0)
        images = ds.images[ds.labels == 0]
        assert len(images) >= 2
        assert np.abs(images[0] - images[1]).mean() > 0.01
