"""Energy model and the simulated wall power meter."""

import pytest

from repro.devices import PowerMeter, device_info, energy_per_batch, forward_latency


@pytest.fixture(scope="module")
def wrn_breakdown(full_summaries):
    return forward_latency(full_summaries["wrn40_2"], 50,
                           device_info("rpi4"), adapts_bn_stats=True,
                           does_backward=True)


class TestEnergyModel:
    def test_energy_positive_and_phase_weighted(self, wrn_breakdown):
        device = device_info("rpi4")
        energy = energy_per_batch(wrn_breakdown, device)
        assert energy > 0
        manual = (wrn_breakdown.forward_phase_s * device.power_forward_w
                  + wrn_breakdown.adapt_phase_s * device.power_adapt_w
                  + wrn_breakdown.backward_phase_s * device.power_backward_w)
        assert energy == pytest.approx(manual)

    def test_gpu_faster_but_more_power_can_still_win_energy(self, full_summaries):
        """Paper: 'significantly faster execution ... makes it more
        energy-efficient (2.86x)' — GPU wins energy for BN-Opt."""
        wrn = full_summaries["wrn40_2"]
        gpu, cpu = device_info("xavier_nx_gpu"), device_info("xavier_nx_cpu")
        e_gpu = energy_per_batch(forward_latency(wrn, 50, gpu,
                                                 adapts_bn_stats=True,
                                                 does_backward=True), gpu)
        e_cpu = energy_per_batch(forward_latency(wrn, 50, cpu,
                                                 adapts_bn_stats=True,
                                                 does_backward=True), cpu)
        assert e_gpu < e_cpu
        assert e_cpu / e_gpu == pytest.approx(2.86, rel=0.4)

    def test_method_energy_ordering(self, full_summaries):
        wrn = full_summaries["wrn40_2"]
        device = device_info("ultra96")
        energies = []
        for adapts, backward in [(False, False), (True, False), (True, True)]:
            b = forward_latency(wrn, 50, device, adapts_bn_stats=adapts,
                                does_backward=backward)
            energies.append(energy_per_batch(b, device))
        assert energies[0] < energies[1] < energies[2]


class TestPowerMeter:
    def test_measured_energy_close_to_analytic(self, wrn_breakdown):
        device = device_info("rpi4")
        meter = PowerMeter(device, sample_hz=50.0, noise_w=0.0)
        measured = meter.record(wrn_breakdown)
        assert measured == pytest.approx(energy_per_batch(wrn_breakdown, device),
                                         rel=1e-6)

    def test_trace_grows_and_clock_advances(self, wrn_breakdown):
        meter = PowerMeter(device_info("rpi4"), sample_hz=20.0)
        meter.record(wrn_breakdown)
        trace = meter.trace
        assert len(trace) > 3
        times = [t for t, _ in trace]
        assert times == sorted(times)

    def test_average_power_between_phase_powers(self, wrn_breakdown):
        device = device_info("rpi4")
        meter = PowerMeter(device, sample_hz=50.0, noise_w=0.0)
        meter.record(wrn_breakdown)
        avg = meter.average_power_w()
        low = min(device.power_forward_w, device.power_adapt_w,
                  device.power_backward_w)
        high = max(device.power_forward_w, device.power_adapt_w,
                   device.power_backward_w)
        assert low <= avg <= high

    def test_reset(self, wrn_breakdown):
        meter = PowerMeter(device_info("rpi4"))
        meter.record(wrn_breakdown)
        meter.reset()
        assert meter.trace == []
        assert meter.average_power_w() == 0.0

    def test_noise_is_deterministic_per_seed(self, wrn_breakdown):
        device = device_info("rpi4")
        a = PowerMeter(device, seed=7).record(wrn_breakdown)
        b = PowerMeter(device, seed=7).record(wrn_breakdown)
        assert a == b
