"""Cost-model edge cases and cross-checks against native execution."""

import numpy as np
import pytest

from repro.devices import device_info, forward_latency
from repro.models import build_model, summarize
from repro.profiling import profile_native
from repro.tensor import functional as F


class TestEdgeCases:
    def test_batch_size_one(self, full_summaries):
        b = forward_latency(full_summaries["wrn40_2"], 1,
                            device_info("rpi4"), adapts_bn_stats=True,
                            does_backward=True)
        assert b.forward_time_s > 0
        # fixed terms (per-layer stat tails, dispatch) dominate at B=1
        assert b.overhead_fw_s + b.bn_adapt_s > 0

    def test_huge_batch_does_not_overflow(self, full_summaries):
        b = forward_latency(full_summaries["resnext29"], 100000,
                            device_info("ultra96"), adapts_bn_stats=True,
                            does_backward=True)
        assert np.isfinite(b.forward_time_s)

    def test_breakdown_fields_all_nonnegative(self, full_summaries):
        for adapts, backward in ((False, False), (True, False), (True, True)):
            b = forward_latency(full_summaries["mobilenet_v2"], 50,
                                device_info("xavier_nx_gpu"),
                                adapts_bn_stats=adapts,
                                does_backward=backward)
            for name in ("conv_fw_s", "bn_fw_s", "bn_adapt_s",
                         "elementwise_fw_s", "overhead_fw_s", "conv_bw_s",
                         "bn_bw_s", "elementwise_bw_s", "optimizer_s",
                         "overhead_bw_s"):
                assert getattr(b, name) >= 0, name

    def test_breakdown_is_frozen(self, full_summaries):
        b = forward_latency(full_summaries["wrn40_2"], 50,
                            device_info("rpi4"), adapts_bn_stats=False,
                            does_backward=False)
        with pytest.raises(Exception):
            b.conv_fw_s = 0.0  # type: ignore[misc]


class TestNativeCrossCheck:
    """The simulated decomposition must have the same *shape* as a real
    numpy execution (different absolute scale, same structure)."""

    @pytest.fixture(scope="class")
    def native_and_simulated(self):
        model = build_model("wrn40_2", "tiny")
        model.train()
        summary = summarize(model, input_shape=(3, 16, 16), name="tiny-wrn")
        x = np.random.default_rng(0).standard_normal(
            (16, 3, 16, 16)).astype(np.float32)
        native = profile_native(model, x, loss_fn=F.entropy_loss)
        simulated = forward_latency(summary, 16, device_info("rpi4"),
                                    adapts_bn_stats=True, does_backward=True)
        return native, simulated

    def test_conv_dominates_forward_in_both(self, native_and_simulated):
        native, simulated = native_and_simulated
        assert native.conv_fw_s > native.bn_fw_s
        assert simulated.conv_fw_s > simulated.bn_fw_s

    def test_backward_is_substantial_in_both(self, native_and_simulated):
        native, simulated = native_and_simulated
        assert native.backward_s > 0.5 * native.total_forward_s
        assert simulated.backward_phase_s > 0.5 * simulated.forward_phase_s
