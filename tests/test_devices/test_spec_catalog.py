"""Device catalog integrity."""

import pytest

from repro.devices import DEVICE_NAMES, device_info, list_devices
from repro.devices.catalog import RPI4, ULTRA96, XAVIER_NX_CPU, XAVIER_NX_GPU


class TestCatalog:
    def test_four_compute_targets(self):
        assert set(DEVICE_NAMES) == {"ultra96", "rpi4", "xavier_nx_cpu",
                                     "xavier_nx_gpu"}

    def test_lookup_and_list_agree(self):
        assert list_devices() == [device_info(name) for name in DEVICE_NAMES]

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            device_info("coral_tpu")

    def test_memory_sizes_match_paper(self):
        assert ULTRA96.memory_total_gb == 2.0
        assert RPI4.memory_total_gb == 8.0
        assert XAVIER_NX_CPU.memory_total_gb == 8.0
        assert XAVIER_NX_GPU.memory_total_gb == 8.0

    def test_gpu_kind(self):
        assert XAVIER_NX_GPU.kind == "gpu"
        assert all(d.kind == "cpu" for d in (ULTRA96, RPI4, XAVIER_NX_CPU))

    def test_compute_hierarchy(self):
        # A53 < A72 < Carmel < Volta in effective dense throughput
        assert (ULTRA96.dense_gmacs_per_s < RPI4.dense_gmacs_per_s
                < XAVIER_NX_CPU.dense_gmacs_per_s
                < XAVIER_NX_GPU.dense_gmacs_per_s)

    def test_gpu_power_ratio_matches_paper(self):
        # "the GPU burns more power than CPU (2.2x)"
        ratio = XAVIER_NX_GPU.power_forward_w / XAVIER_NX_CPU.power_forward_w
        assert ratio == pytest.approx(2.2, rel=0.05)

    def test_gpu_bn_stat_recompute_slower_per_element_than_cpu(self):
        # the paper's "forward BN performance is worse ... GPU over CPU"
        assert (XAVIER_NX_GPU.bn_adapt_s_per_elem
                > XAVIER_NX_CPU.bn_adapt_s_per_elem)

    def test_only_gpu_loads_accel_libraries(self):
        assert XAVIER_NX_GPU.accel_library_bytes > 1e9
        assert all(d.accel_library_bytes == 0
                   for d in (ULTRA96, RPI4, XAVIER_NX_CPU))

    def test_memory_budget(self):
        budget = ULTRA96.memory_budget_bytes
        assert budget == pytest.approx((2.0 - 0.10) * 1e9)

    def test_with_overrides(self):
        doubled = ULTRA96.with_overrides(memory_total_gb=4.0)
        assert doubled.memory_total_gb == 4.0
        assert ULTRA96.memory_total_gb == 2.0   # frozen original untouched
        assert doubled.dense_gmacs_per_s == ULTRA96.dense_gmacs_per_s

    def test_describe(self):
        assert "2 GB" in ULTRA96.describe()
