"""Anchor calibration: the frozen device constants must keep reproducing
every numeric measurement the paper reports, within per-anchor tolerance."""

import pytest

from repro.devices.calibrate import (
    ANCHORS,
    anchor_report,
    format_anchor_report,
    predicted_energy,
    predicted_time,
)


@pytest.fixture(scope="module")
def report():
    return anchor_report()


class TestAnchors:
    def test_anchor_count_covers_paper(self, report):
        # WRN-50 anchors (18) + averages (4) + A1/A2 (2) + Table I (9)
        assert len(report) == 33

    def test_every_anchor_within_tolerance(self, report):
        failures = [r for r in report if not r.within_tolerance]
        details = "\n".join(f"{r.label}: paper={r.paper_value} "
                            f"model={r.predicted:.3f} err={r.rel_error:.1%}"
                            for r in failures)
        assert not failures, f"anchors out of tolerance:\n{details}"

    def test_wrn50_anchors_tight(self, report):
        """The WRN-AM-50 rows drive the paper's optimal-configuration
        selections, so they must be essentially exact (<5%)."""
        wrn_rows = [r for r in report if "WRN-50" in r.label]
        assert len(wrn_rows) >= 15
        assert all(r.rel_error < 0.12 for r in wrn_rows)

    def test_format_report_is_markdown_table(self, report):
        text = format_anchor_report(report)
        assert text.startswith("| anchor |")
        assert text.count("\n") == len(report) + 1


class TestPredictHelpers:
    def test_predicted_time_positive(self, full_summaries):
        t = predicted_time(full_summaries, "wrn40_2", "ultra96", "no_adapt", 50)
        assert t > 0

    def test_predicted_energy_positive(self, full_summaries):
        e = predicted_energy(full_summaries, "wrn40_2", "rpi4", "bn_opt", 100)
        assert e > 0

    def test_headline_ratio_220x(self, full_summaries):
        """A3 vs A1: '220x faster'."""
        a1 = predicted_time(full_summaries, "resnext29", "xavier_nx_cpu",
                            "bn_opt", 200)
        a3 = predicted_time(full_summaries, "wrn40_2", "xavier_nx_gpu",
                            "bn_norm", 50)
        assert a1 / a3 == pytest.approx(220, rel=0.10)

    def test_headline_ratio_114x_energy(self, full_summaries):
        """A3 vs A2: '114x more energy-efficient'."""
        a2 = predicted_energy(full_summaries, "resnext29", "rpi4",
                              "bn_opt", 200)
        a3 = predicted_energy(full_summaries, "wrn40_2", "xavier_nx_gpu",
                              "bn_norm", 50)
        assert a2 / a3 == pytest.approx(114, rel=0.20)

    def test_gpu_speedup_averages(self, full_summaries):
        """Section IV-D speedup means: 90.5% / 68.13% / 79.21%."""
        cases = [("no_adapt", 90.5, 3.0), ("bn_norm", 68.13, 12.0),
                 ("bn_opt", 79.21, 6.0)]
        for method, paper_value, tol in cases:
            speedups = []
            for model in ("wrn40_2", "resnet18", "resnext29"):
                for batch in (50, 100, 200):
                    if method == "bn_opt" and model == "resnext29" and batch == 200:
                        continue  # GPU OOM
                    cpu = predicted_time(full_summaries, model,
                                         "xavier_nx_cpu", method, batch)
                    gpu = predicted_time(full_summaries, model,
                                         "xavier_nx_gpu", method, batch)
                    speedups.append(100 * (cpu - gpu) / cpu)
            mean = sum(speedups) / len(speedups)
            assert mean == pytest.approx(paper_value, abs=tol), method
