"""Memory model: the paper's OOM events, graph sizes, profiler overhead."""

import pytest

from repro.core.reference import CLAIM_RXT_GRAPH_GB_100
from repro.devices import OutOfMemoryError, device_info, estimate_memory
from repro.devices.memory import check_memory


def fits(summary, device_name, batch, backward, profiling=False):
    estimate = estimate_memory(summary, batch, device_info(device_name),
                               does_backward=backward, profiling=profiling)
    return estimate.fits


class TestPaperOOMEvents:
    """Every memory feasibility outcome the paper reports, as a table."""

    @pytest.mark.parametrize("model,device,batch,backward,expected", [
        # Ultra96-v2 (2 GB): "BN-Opt runs out of memory for RXT for 100
        # and 200 batch sizes" — batch 50 runs.
        ("resnext29", "ultra96", 50, True, True),
        ("resnext29", "ultra96", 100, True, False),
        ("resnext29", "ultra96", 200, True, False),
        # "BN-Norm is able to run for all 9 cases on the FPGA PS"
        ("resnext29", "ultra96", 200, False, True),
        ("wrn40_2", "ultra96", 200, False, True),
        ("resnet18", "ultra96", 200, False, True),
        # WRN / R18 run BN-Opt at every batch size on the FPGA
        ("wrn40_2", "ultra96", 200, True, True),
        ("resnet18", "ultra96", 200, True, True),
        # RPi (8 GB): "all three DNNs, with both BN-Norm and BN-Opt, are
        # able to run on the RPi"
        ("resnext29", "rpi4", 200, True, True),
        # Xavier NX GPU: "RXT-AM-200 with BN-Opt runs out of memory when
        # executed on the GPU" (cuDNN libraries), batch 100 runs.
        ("resnext29", "xavier_nx_gpu", 100, True, True),
        ("resnext29", "xavier_nx_gpu", 200, True, False),
        # NX CPU runs RXT-200 BN-Opt (it is the paper's A1 point)
        ("resnext29", "xavier_nx_cpu", 200, True, True),
    ])
    def test_feasibility(self, full_summaries, model, device, batch,
                         backward, expected):
        assert fits(full_summaries[model], device, batch, backward) == expected


class TestGraphModel:
    def test_rxt_graph_calibrated_to_312_gb(self, full_summaries):
        estimate = estimate_memory(full_summaries["resnext29"], 100,
                                   device_info("rpi4"), does_backward=True)
        assert estimate.graph_gb == pytest.approx(CLAIM_RXT_GRAPH_GB_100,
                                                  rel=0.02)

    def test_graph_scales_linearly_with_batch(self, full_summaries):
        small = estimate_memory(full_summaries["resnext29"], 100,
                                device_info("rpi4"), does_backward=True)
        large = estimate_memory(full_summaries["resnext29"], 200,
                                device_info("rpi4"), does_backward=True)
        assert large.graph_bytes == pytest.approx(2 * small.graph_bytes)

    def test_no_graph_without_backward(self, full_summaries):
        estimate = estimate_memory(full_summaries["resnext29"], 200,
                                   device_info("rpi4"), does_backward=False)
        assert estimate.graph_bytes == 0.0
        assert estimate.optimizer_bytes == 0.0

    def test_rxt_graph_largest_despite_smaller_weights_than_r18(self,
                                                                full_summaries):
        """The paper's key memory finding: RXT (26 MB weights) OOMs where
        R18 (45 MB weights) runs, because of its activation graph."""
        rxt = estimate_memory(full_summaries["resnext29"], 100,
                              device_info("rpi4"), does_backward=True)
        r18 = estimate_memory(full_summaries["resnet18"], 100,
                              device_info("rpi4"), does_backward=True)
        assert rxt.weights_bytes < r18.weights_bytes
        assert rxt.graph_bytes > 2 * r18.graph_bytes


class TestProfilerOverhead:
    def test_profiler_pushes_rxt_over_on_ultra96(self, full_summaries):
        # paper: "The profiler runs out of memory for RXT-AM"
        assert fits(full_summaries["resnext29"], "ultra96", 50, True,
                    profiling=False)
        assert not fits(full_summaries["resnext29"], "ultra96", 50, True,
                        profiling=True)

    def test_profiler_fits_for_wrn_and_r18(self, full_summaries):
        for model in ("wrn40_2", "resnet18"):
            assert fits(full_summaries[model], "ultra96", 50, True,
                        profiling=True)


class TestCheckMemory:
    def test_check_raises_with_estimate(self, full_summaries):
        with pytest.raises(OutOfMemoryError) as excinfo:
            check_memory(full_summaries["resnext29"], 200,
                         device_info("ultra96"), does_backward=True)
        assert excinfo.value.estimate.graph_gb > 2.0
        assert "Ultra96" in str(excinfo.value)

    def test_check_returns_estimate_when_fits(self, full_summaries):
        estimate = check_memory(full_summaries["wrn40_2"], 50,
                                device_info("rpi4"), does_backward=True)
        assert estimate.fits

    def test_gpu_framework_includes_cudnn(self, full_summaries):
        cpu = estimate_memory(full_summaries["wrn40_2"], 50,
                              device_info("xavier_nx_cpu"), does_backward=True)
        gpu = estimate_memory(full_summaries["wrn40_2"], 50,
                              device_info("xavier_nx_gpu"), does_backward=True)
        assert gpu.framework_bytes > cpu.framework_bytes + 1e9
