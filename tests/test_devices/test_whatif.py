"""What-if sensitivity analysis of the device cost model."""

import pytest

from repro.devices import device_info
from repro.devices.whatif import (
    SWEEPABLE_FIELDS,
    energy_metric,
    format_sensitivities,
    latency_metric,
    sensitivities,
    sweep,
)


@pytest.fixture(scope="module")
def wrn(full_summaries):
    return full_summaries["wrn40_2"]


class TestSweep:
    def test_throughput_sweep_monotone(self, wrn):
        device = device_info("rpi4")
        metric = latency_metric(wrn, 50, adapts_bn_stats=False,
                                does_backward=False)
        results = sweep(device, "dense_gmacs_per_s", (0.5, 1.0, 2.0), metric)
        times = [t for _, t in results]
        assert times[0] > times[1] > times[2]

    def test_factor_one_is_baseline(self, wrn):
        device = device_info("rpi4")
        metric = latency_metric(wrn, 50, adapts_bn_stats=True,
                                does_backward=True)
        (_, swept), = sweep(device, "conv_bw_factor", (1.0,), metric)
        assert swept == pytest.approx(metric(device))

    def test_unsweepable_field_raises(self, wrn):
        metric = latency_metric(wrn, 50, adapts_bn_stats=False,
                                does_backward=False)
        with pytest.raises(KeyError):
            sweep(device_info("rpi4"), "display_name", (1.0,), metric)


class TestSensitivities:
    def test_inference_dominated_by_conv_throughput(self, wrn):
        device = device_info("rpi4")
        metric = latency_metric(wrn, 50, adapts_bn_stats=False,
                                does_backward=False)
        top = sensitivities(device, metric)[0]
        assert top.field_name == "dense_gmacs_per_s"
        assert top.elasticity < 0   # more throughput, less time

    def test_bnopt_latency_sensitive_to_bw_factor(self, wrn):
        device = device_info("ultra96")
        metric = latency_metric(wrn, 50, adapts_bn_stats=True,
                                does_backward=True)
        ranked = {s.field_name: abs(s.elasticity)
                  for s in sensitivities(device, metric)}
        # backward factor matters for BN-Opt ...
        assert ranked["conv_bw_factor"] > 0.3
        # ... and power constants matter zero for latency
        assert ranked["power_forward_w"] == 0.0

    def test_energy_sensitive_to_power(self, wrn):
        device = device_info("rpi4")
        metric = energy_metric(wrn, 50, adapts_bn_stats=False,
                               does_backward=False)
        ranked = {s.field_name: s.elasticity
                  for s in sensitivities(device, metric)}
        assert ranked["power_forward_w"] == pytest.approx(1.0, abs=0.05)

    def test_zero_baseline_fields_zero_elasticity(self, wrn):
        device = device_info("xavier_nx_gpu")   # c_chan and c_layer are 0
        metric = latency_metric(wrn, 50, adapts_bn_stats=True,
                                does_backward=False)
        ranked = {s.field_name: s.elasticity
                  for s in sensitivities(device, metric)}
        assert ranked["bn_adapt_s_per_channel"] == 0.0

    def test_all_sweepable_fields_covered(self, wrn):
        device = device_info("rpi4")
        metric = latency_metric(wrn, 50, adapts_bn_stats=True,
                                does_backward=True)
        results = sensitivities(device, metric)
        assert len(results) == len(SWEEPABLE_FIELDS)

    def test_format(self, wrn):
        device = device_info("rpi4")
        metric = latency_metric(wrn, 50, adapts_bn_stats=True,
                                does_backward=True)
        text = format_sensitivities(sensitivities(device, metric), top=3)
        assert text.count("\n") == 3
