"""Latency cost model: structure, monotonicity, method/device orderings."""

import pytest

from repro.devices import device_info, forward_latency
from repro.devices.catalog import ULTRA96


@pytest.fixture(scope="module")
def wrn(full_summaries):
    return full_summaries["wrn40_2"]


@pytest.fixture(scope="module")
def rxt(full_summaries):
    return full_summaries["resnext29"]


def lat(summary, device_name, method, batch=50):
    flags = {"no_adapt": (False, False), "bn_norm": (True, False),
             "bn_opt": (True, True)}[method]
    return forward_latency(summary, batch, device_info(device_name),
                           adapts_bn_stats=flags[0], does_backward=flags[1])


class TestStructure:
    def test_no_adapt_has_no_adaptation_phases(self, wrn):
        b = lat(wrn, "rpi4", "no_adapt")
        assert b.bn_adapt_s == 0.0
        assert b.backward_phase_s == 0.0

    def test_bn_norm_adds_only_stat_recompute(self, wrn):
        base = lat(wrn, "rpi4", "no_adapt")
        norm = lat(wrn, "rpi4", "bn_norm")
        assert norm.bn_adapt_s > 0
        assert norm.backward_phase_s == 0.0
        assert norm.forward_phase_s == pytest.approx(base.forward_phase_s)

    def test_bn_opt_adds_backward(self, wrn):
        opt = lat(wrn, "rpi4", "bn_opt")
        assert opt.conv_bw_s > 0 and opt.bn_bw_s > 0 and opt.optimizer_s > 0

    def test_total_is_sum_of_phases(self, wrn):
        b = lat(wrn, "ultra96", "bn_opt")
        assert b.forward_time_s == pytest.approx(
            b.forward_phase_s + b.adapt_phase_s + b.backward_phase_s)

    def test_backward_without_stats_rejected(self, wrn):
        with pytest.raises(ValueError):
            forward_latency(wrn, 50, ULTRA96, adapts_bn_stats=False,
                            does_backward=True)

    def test_scaled_breakdown(self, wrn):
        b = lat(wrn, "ultra96", "bn_opt")
        doubled = b.scaled(2.0)
        assert doubled.forward_time_s == pytest.approx(2 * b.forward_time_s)


class TestMonotonicity:
    @pytest.mark.parametrize("method", ["no_adapt", "bn_norm", "bn_opt"])
    def test_time_increases_with_batch(self, wrn, method):
        times = [lat(wrn, "rpi4", method, batch).forward_time_s
                 for batch in (50, 100, 200)]
        assert times[0] < times[1] < times[2]

    def test_method_ordering_every_device(self, wrn):
        for device in ("ultra96", "rpi4", "xavier_nx_cpu", "xavier_nx_gpu"):
            na = lat(wrn, device, "no_adapt").forward_time_s
            norm = lat(wrn, device, "bn_norm").forward_time_s
            opt = lat(wrn, device, "bn_opt").forward_time_s
            assert na < norm < opt, device

    def test_faster_device_is_faster(self, wrn):
        assert (lat(wrn, "xavier_nx_gpu", "no_adapt").forward_time_s
                < lat(wrn, "xavier_nx_cpu", "no_adapt").forward_time_s
                < lat(wrn, "rpi4", "no_adapt").forward_time_s
                < lat(wrn, "ultra96", "no_adapt").forward_time_s)


class TestFlavorEfficiency:
    def test_grouped_convs_are_derated(self, rxt):
        """ResNeXt's effective time exceeds what its MACs alone predict."""
        split = rxt.macs_by_flavor()
        device = device_info("rpi4")
        b = lat(rxt, "rpi4", "no_adapt")
        dense_only_estimate = 50 * rxt.conv_macs / (device.dense_gmacs_per_s * 1e9)
        assert b.conv_fw_s > dense_only_estimate
        assert split["grouped"] > 0

    def test_depthwise_derate_largest_on_gpu(self, full_summaries):
        gpu = device_info("xavier_nx_gpu")
        cpu = device_info("rpi4")
        assert gpu.depthwise_efficiency < gpu.grouped_efficiency
        # sanity: model exposes both efficiencies in (0, 1]
        for d in (gpu, cpu):
            assert 0 < d.depthwise_efficiency <= 1
            assert 0 < d.grouped_efficiency <= 1


class TestPaperOrderings:
    def test_resnext_slowest_model_per_batch(self, full_summaries):
        # "RXT also shows significantly higher forward time" (Section IV-B)
        times = {name: lat(s, "ultra96", "no_adapt").forward_time_s
                 for name, s in full_summaries.items()}
        assert times["resnext29"] == max(times.values())

    def test_mobilenet_fastest_inference_but_slow_adaptation(self, full_summaries):
        # Section IV-F: MobileNet wins No-Adapt but pays ~2x BN overhead
        times_na = {name: lat(s, "xavier_nx_gpu", "no_adapt").forward_time_s
                    for name, s in full_summaries.items()}
        assert times_na["mobilenet_v2"] == min(times_na.values())
        wrn_overhead = (lat(full_summaries["wrn40_2"], "xavier_nx_gpu",
                            "bn_norm").forward_time_s
                        - times_na["wrn40_2"])
        mnv2_overhead = (lat(full_summaries["mobilenet_v2"], "xavier_nx_gpu",
                             "bn_norm").forward_time_s
                         - times_na["mobilenet_v2"])
        assert mnv2_overhead > 1.8 * wrn_overhead

    def test_a3_adaptation_overhead_213ms(self, full_summaries):
        # the paper's headline: 213 ms BN-Norm overhead on NX GPU for WRN-50
        wrn = full_summaries["wrn40_2"]
        overhead = (lat(wrn, "xavier_nx_gpu", "bn_norm").forward_time_s
                    - lat(wrn, "xavier_nx_gpu", "no_adapt").forward_time_s)
        assert overhead == pytest.approx(0.213, rel=0.05)

    def test_bn_norm_vs_bn_opt_gpu_reduction(self, full_summaries):
        # Section IV-E: BN-Norm is ~61.6% lower latency than BN-Opt on GPU
        wrn = full_summaries["wrn40_2"]
        norm = lat(wrn, "xavier_nx_gpu", "bn_norm").forward_time_s
        opt = lat(wrn, "xavier_nx_gpu", "bn_opt").forward_time_s
        reduction = 100 * (opt - norm) / opt
        assert reduction == pytest.approx(61.6, abs=5.0)
