"""Tests for the runtime lock-order watchdog (``repro.analysis.lockwatch``)."""

import json
import threading
import time

import pytest

from repro.analysis import (
    LockInversionError,
    active_watch,
    finish_watch,
    instrument_locks,
    lockwatch_enabled,
    maybe_instrument,
)
from repro.analysis.lockwatch import ENV_FLAG, ENV_REPORT


def _run_in_thread(fn, name):
    worker = threading.Thread(target=fn, name=name, daemon=True)
    worker.start()
    worker.join(timeout=10.0)
    assert not worker.is_alive()


class TestInversionDetection:
    def test_ab_ba_inversion_detected(self):
        with instrument_locks() as watch:
            lock_a = threading.Lock()
            lock_b = threading.Lock()

            def forward():
                with lock_a:
                    with lock_b:
                        pass

            def backward():
                with lock_b:
                    with lock_a:
                        pass

            # sequential on purpose: the watchdog flags the *order*
            # hazard without needing the timing-dependent deadlock
            _run_in_thread(forward, "fwd")
            _run_in_thread(backward, "bwd")

        assert watch.inversion_count == 1
        record = watch.inversions[0]
        assert len(record["cycle"]) == 3  # A -> B -> A
        assert record["cycle"][0] == record["cycle"][-1]
        assert record["thread"] == "bwd"
        assert record["stack"]  # acquisition stack captured
        with pytest.raises(LockInversionError) as excinfo:
            watch.assert_clean()
        assert "inversion" in str(excinfo.value)

    def test_consistent_order_clean(self):
        with instrument_locks() as watch:
            lock_a = threading.Lock()
            lock_b = threading.Lock()

            def forward():
                with lock_a:
                    with lock_b:
                        pass

            _run_in_thread(forward, "one")
            _run_in_thread(forward, "two")

        assert watch.inversion_count == 0
        assert len(watch.edges) == 1
        watch.assert_clean()

    def test_three_lock_cycle_detected(self):
        with instrument_locks() as watch:
            # one construction site per lock: identity is role-based
            # (file:line), so a comprehension would merge them
            lock_a = threading.Lock()
            lock_b = threading.Lock()
            lock_c = threading.Lock()
            locks = [lock_a, lock_b, lock_c]

            def nest(first, second):
                with locks[first]:
                    with locks[second]:
                        pass

            _run_in_thread(lambda: nest(0, 1), "ab")
            _run_in_thread(lambda: nest(1, 2), "bc")
            _run_in_thread(lambda: nest(2, 0), "ca")

        assert watch.inversion_count == 1
        assert len(watch.inversions[0]["cycle"]) == 4

    def test_rlock_reentrancy_no_self_edge(self):
        with instrument_locks() as watch:
            rlock = threading.RLock()
            with rlock:
                with rlock:
                    pass

        assert watch.inversion_count == 0
        assert watch.edges == {}
        # reentrant re-acquire is not a second hold
        assert watch.acquisitions == 1

    def test_nonblocking_acquire_creates_no_edge(self):
        # the close-once latch idiom: acquire(blocking=False) under
        # another lock can never deadlock, so no edge is recorded —
        # but the latch still joins the held stack
        with instrument_locks() as watch:
            guard = threading.Lock()
            latch = threading.Lock()
            with guard:
                assert latch.acquire(blocking=False)
            latch.release()
            # opposite blocking order elsewhere must stay clean
            with latch:
                pass

        assert watch.inversion_count == 0
        assert watch.edges == {}


class TestLongHolds:
    def test_long_hold_recorded(self):
        with instrument_locks(long_hold_s=0.05) as watch:
            lock = threading.Lock()
            with lock:
                time.sleep(0.08)

        assert watch.long_hold_count == 1
        record = watch.long_holds[0]
        assert record["held_s"] >= 0.05
        # warnings by default ...
        watch.assert_clean()
        # ... failures on request
        with pytest.raises(LockInversionError):
            watch.assert_clean(long_holds=True)

    def test_fast_hold_not_recorded(self):
        with instrument_locks(long_hold_s=0.5) as watch:
            lock = threading.Lock()
            with lock:
                pass
        assert watch.long_hold_count == 0


class TestConditionInstrumentation:
    def test_condition_wait_notify_across_threads(self):
        with instrument_locks() as watch:
            cond = threading.Condition()
            ready = []

            def consumer():
                with cond:
                    while not ready:
                        cond.wait(timeout=5.0)

            worker = threading.Thread(target=consumer, name="consumer",
                                      daemon=True)
            worker.start()
            time.sleep(0.02)
            with cond:
                ready.append(True)
                cond.notify()
            worker.join(timeout=5.0)
            assert not worker.is_alive()

        assert watch.inversion_count == 0
        assert watch.locks_created >= 1

    def test_event_picks_up_patched_lock(self):
        # threading.Event resolves module globals at construction time
        with instrument_locks() as watch:
            event = threading.Event()
            event.set()
            assert event.wait(timeout=1.0)
        assert watch.locks_created >= 1


class TestReporting:
    def test_report_structure(self):
        with instrument_locks() as watch:
            outer = threading.Lock()
            inner = threading.Lock()
            with outer:
                with inner:
                    pass

        report = watch.report()
        assert report["format"] == "repro.lockwatch_report"
        assert report["version"] == 1
        assert report["locks_created"] == 2
        assert report["acquisitions"] == 2
        assert report["inversion_count"] == 0
        assert len(report["edges"]) == 1
        assert report["edges"][0]["count"] == 1

    def test_write_report_round_trips(self, tmp_path):
        report_path = tmp_path / "lockwatch.json"
        with instrument_locks() as watch:
            lock = threading.Lock()
            with lock:
                pass
        watch.write_report(str(report_path))
        loaded = json.loads(report_path.read_text())
        assert loaded == watch.report()


class TestInstrumentationLifecycle:
    def test_factories_restored_after_exit(self):
        original = (threading.Lock, threading.RLock, threading.Condition)
        with instrument_locks():
            assert threading.Lock is not original[0]
            assert threading.RLock is not original[1]
            assert threading.Condition is not original[2]
        assert (threading.Lock, threading.RLock,
                threading.Condition) == original

    def test_factories_restored_on_error(self):
        original = threading.Lock
        with pytest.raises(RuntimeError):
            with instrument_locks():
                raise RuntimeError("boom")
        assert threading.Lock is original

    def test_active_watch_tracks_nesting(self):
        assert active_watch() is None
        with instrument_locks() as outer:
            assert active_watch() is outer
            with instrument_locks() as inner:
                assert active_watch() is inner
            assert active_watch() is outer
        assert active_watch() is None

    def test_uninstrumented_locks_unobserved(self):
        # a lock constructed before the context stays plain
        lock = threading.Lock()
        with instrument_locks() as watch:
            with lock:
                pass
        assert watch.locks_created == 0
        assert watch.acquisitions == 0


class TestEnvHook:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert not lockwatch_enabled()
        with maybe_instrument() as watch:
            assert watch is None
        finish_watch(None)  # no-op

    def test_enabled_via_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_FLAG, "1")
        report_path = tmp_path / "report.json"
        monkeypatch.setenv(ENV_REPORT, str(report_path))
        assert lockwatch_enabled()
        with maybe_instrument() as watch:
            assert watch is not None
            lock = threading.Lock()
            with lock:
                pass
        finish_watch(watch)
        loaded = json.loads(report_path.read_text())
        assert loaded["acquisitions"] == 1

    def test_finish_watch_writes_report_before_raising(
            self, monkeypatch, tmp_path):
        report_path = tmp_path / "report.json"
        monkeypatch.setenv(ENV_REPORT, str(report_path))
        with instrument_locks() as watch:
            lock_a = threading.Lock()
            lock_b = threading.Lock()

            def forward():
                with lock_a:
                    with lock_b:
                        pass

            def backward():
                with lock_b:
                    with lock_a:
                        pass

            _run_in_thread(forward, "fwd")
            _run_in_thread(backward, "bwd")

        with pytest.raises(LockInversionError):
            finish_watch(watch)
        # the artifact survives the failure so CI can upload it
        loaded = json.loads(report_path.read_text())
        assert loaded["inversion_count"] == 1
