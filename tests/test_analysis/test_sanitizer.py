"""SanitizerBackend: op-site fault attribution, clean-run transparency,
and the end-to-end ``--backend sanitize`` native-study acceptance."""

import numpy as np
import pytest

from repro.analysis.sanitize import NumericFaultError, SanitizerBackend
from repro.engine import NumpyBackend, create_backend

RNG = np.random.default_rng(7)


def conv_inputs():
    xp = RNG.standard_normal((2, 3, 10, 10)).astype(np.float32)
    weight = RNG.standard_normal((4, 3, 3, 3)).astype(np.float32)
    return xp, weight


class StubInner:
    """Minimal inner backend returning scripted results, for driving
    contract checks the real NumpyBackend can never violate."""

    name = "stub"
    arena = None

    def __init__(self, **results):
        self.results = results

    def __getattr__(self, op):
        if op in self.results:
            return lambda *args, **kwargs: self.results[op]
        raise AttributeError(op)


class TestCleanRunTransparency:
    def test_kernels_bit_identical_to_numpy_backend(self):
        xp, weight = conv_inputs()
        reference = NumpyBackend()
        sanitizer = SanitizerBackend(NumpyBackend())
        try:
            assert np.array_equal(
                reference.conv2d_forward(xp, weight, (1, 1), 1),
                sanitizer.conv2d_forward(xp, weight, (1, 1), 1))
            a = xp.reshape(2, -1)
            assert np.array_equal(reference.matmul(a, a.T),
                                  sanitizer.matmul(a, a.T))
            ref_mean, ref_var = reference.batchnorm_stats(xp)
            san_mean, san_var = sanitizer.batchnorm_stats(xp)
            assert np.array_equal(ref_mean, san_mean)
            assert np.array_equal(ref_var, san_var)
            assert sanitizer.findings == []
        finally:
            reference.close()
            sanitizer.close()

    def test_shares_inner_arena(self):
        inner = NumpyBackend()
        sanitizer = SanitizerBackend(inner)
        try:
            assert sanitizer.arena is inner.arena
        finally:
            sanitizer.close()

    def test_create_backend_by_name(self):
        backend = create_backend("sanitize")
        try:
            assert isinstance(backend, SanitizerBackend)
            assert backend.name == "sanitize"
            assert isinstance(backend.inner, NumpyBackend)
        finally:
            backend.close()


class TestFaultAttribution:
    def test_nan_input_pinpoints_op_and_argument(self):
        xp, weight = conv_inputs()
        xp[1, 2, 3, 4] = np.nan
        sanitizer = SanitizerBackend(NumpyBackend())
        try:
            sanitizer.conv2d_forward(xp, weight, (1, 1), 1)
        finally:
            sanitizer.close()
        first = sanitizer.findings[0]
        assert (first.op, first.call_index, first.argument) == \
            ("conv2d_forward", 0, "xp")
        assert first.kind == "nan" and "1 NaN value(s)" in first.detail

    def test_inf_weight_detected(self):
        xp, weight = conv_inputs()
        weight[0, 0, 0, 0] = np.inf
        sanitizer = SanitizerBackend(NumpyBackend())
        try:
            sanitizer.conv2d_forward(xp, weight, (1, 1), 1)
        finally:
            sanitizer.close()
        kinds = {(f.argument, f.kind) for f in sanitizer.findings}
        assert ("weight", "inf") in kinds

    def test_dtype_drift_detected(self):
        a = RNG.standard_normal((3, 4))        # float64: drifted
        sanitizer = SanitizerBackend(NumpyBackend())
        try:
            sanitizer.matmul(a, a.T)
        finally:
            sanitizer.close()
        drifted = [f for f in sanitizer.findings if f.kind == "dtype"]
        assert {f.argument for f in drifted} >= {"a", "b"}
        assert "float64" in drifted[0].detail

    def test_integer_arrays_exempt_from_dtype_check(self):
        """argmax-style integer payloads are not dtype drift."""
        grad = RNG.standard_normal((2, 3, 4, 4)).astype(np.float32)
        inner = NumpyBackend()
        sanitizer = SanitizerBackend(inner)
        try:
            x = RNG.standard_normal((2, 3, 8, 8)).astype(np.float32)
            out, arg = sanitizer.max_pool2d_forward(x, (2, 2), (2, 2))
            sanitizer.max_pool2d_backward(grad, arg, x.shape, (2, 2), (2, 2))
            assert sanitizer.findings == []
        finally:
            sanitizer.close()

    def test_output_shape_contract_violation(self):
        xp, weight = conv_inputs()
        wrong = np.zeros((2, 4, 5, 5), dtype=np.float32)
        sanitizer = SanitizerBackend(StubInner(conv2d_forward=wrong))
        sanitizer.conv2d_forward(xp, weight, (1, 1), 1)
        shape_findings = [f for f in sanitizer.findings
                          if f.kind == "shape" and f.argument == "out"]
        assert len(shape_findings) == 1
        assert "(2, 4, 8, 8)" in shape_findings[0].detail

    def test_matmul_contraction_mismatch(self):
        sanitizer = SanitizerBackend(
            StubInner(matmul=np.zeros((2, 5), dtype=np.float32)))
        sanitizer.matmul(np.zeros((2, 3), dtype=np.float32),
                         np.zeros((4, 5), dtype=np.float32))
        assert any(f.kind == "shape" and "do not contract" in f.detail
                   for f in sanitizer.findings)

    def test_negative_variance_is_a_range_finding(self):
        stats = (np.zeros(3, dtype=np.float32),
                 np.array([0.5, -1.0, 2.0], dtype=np.float32))
        sanitizer = SanitizerBackend(StubInner(batchnorm_stats=stats))
        sanitizer.batchnorm_stats(
            np.zeros((4, 3, 2, 2), dtype=np.float32))
        ranged = [f for f in sanitizer.findings if f.kind == "range"]
        assert len(ranged) == 1
        assert ranged[0].op == "batchnorm_stats"
        assert "negative variance" in ranged[0].detail


class TestModes:
    def test_fail_fast_raises_with_finding(self):
        xp, weight = conv_inputs()
        xp[0, 0, 0, 0] = np.nan
        sanitizer = SanitizerBackend(NumpyBackend(), fail_fast=True)
        try:
            with pytest.raises(NumericFaultError) as excinfo:
                sanitizer.conv2d_forward(xp, weight, (1, 1), 1)
        finally:
            sanitizer.close()
        assert excinfo.value.finding.op == "conv2d_forward"
        assert "nan" in str(excinfo.value)

    def test_max_findings_truncation(self):
        a = np.full((2, 2), np.nan, dtype=np.float32)
        sanitizer = SanitizerBackend(NumpyBackend(), max_findings=2)
        try:
            for _ in range(3):
                sanitizer.matmul(a, a)
        finally:
            sanitizer.close()
        assert len(sanitizer.findings) == 2 and sanitizer.truncated
        assert "truncated at 2" in sanitizer.describe()

    def test_clear_resets_counters_and_findings(self):
        a = np.full((2, 2), np.nan, dtype=np.float32)
        sanitizer = SanitizerBackend(NumpyBackend())
        try:
            sanitizer.matmul(a, a)
            assert sanitizer.findings
            sanitizer.clear()
            assert sanitizer.findings == [] and not sanitizer.truncated
            good = np.ones((2, 2), dtype=np.float32)
            sanitizer.matmul(good, good)
        finally:
            sanitizer.close()
        assert sanitizer.findings == []
        assert sanitizer.describe() == "sanitizer: clean (no findings)"


class TestNativeStudyAcceptance:
    """Acceptance: ``--backend sanitize`` completes a 2-cell study with
    zero findings; a robustness-layer nan fault is flagged at the exact
    op where it enters the engine."""

    CONFIG_KWARGS = dict(models=("wrn40_2",), batch_sizes=(50,),
                         image_size=16, stream_samples=200)

    def test_clean_two_cell_study_has_no_findings(self, micro_trained_model):
        from repro.core.config import StudyConfig
        from repro.core.runner import run_native_study

        model, _ = micro_trained_model
        config = StudyConfig(methods=("no_adapt", "bn_norm"),
                             corruptions=("fog", "gaussian_noise"),
                             backend="sanitize", **self.CONFIG_KWARGS)
        sanitizer = SanitizerBackend()
        try:
            result = run_native_study(config, models={"wrn40_2": model},
                                      backend=sanitizer)
            assert len(result) == 2
            assert all(r.status == "ok" for r in result)
            assert sanitizer.findings == []
        finally:
            sanitizer.close()

    def test_injected_nan_fault_flagged_at_entry_op(self,
                                                    micro_trained_model):
        from repro.core.config import StudyConfig
        from repro.core.runner import run_native_study

        model, _ = micro_trained_model
        config = StudyConfig(methods=("no_adapt",), corruptions=("fog",),
                             backend="sanitize", faults="nan@1",
                             **self.CONFIG_KWARGS)
        sanitizer = SanitizerBackend()
        try:
            run_native_study(config, models={"wrn40_2": model},
                             backend=sanitizer)
        finally:
            sanitizer.close()
        assert sanitizer.findings, "the injected nan fault went undetected"
        first = sanitizer.findings[0]
        # the poisoned batch enters the engine through the first conv's
        # input padding — the sanitizer names that exact op and argument
        assert (first.op, first.argument, first.kind) == \
            ("pad_input", "x", "nan")
