"""Tests for the finding reporters (text, JSON, GitHub annotations)."""

import json

from repro.analysis.findings import Finding, finding_from_dict
from repro.analysis.reporters import (
    format_github,
    format_json,
    format_rule_catalog,
    format_text,
)
from repro.analysis.rules import RULES


def _finding(code="REP001", message="bare print in library code",
             path="src/repro/core/mod.py", line=10, col=4,
             text="print(x)"):
    return Finding(code=code, message=message, path=path, line=line,
                   col=col, text=text)


class TestFormatText:
    def test_empty(self):
        assert format_text([]) == "repro check: no findings"

    def test_lines_and_summary(self):
        findings = [_finding(), _finding(code="REP003", line=20)]
        output = format_text(findings)
        assert "src/repro/core/mod.py:10:5: REP001" in output
        assert output.endswith(
            "repro check: 2 finding(s) (REP001 x1, REP003 x1)")


class TestFormatJson:
    def test_round_trip(self):
        findings = [_finding(), _finding(code="REP003", line=20)]
        payload = json.loads(format_json(findings))
        assert payload["format"] == "repro.check_report"
        assert payload["version"] == 1
        assert payload["count"] == 2
        assert [finding_from_dict(row) for row in payload["findings"]] == \
            findings

    def test_empty_document(self):
        payload = json.loads(format_json([]))
        assert payload["count"] == 0
        assert payload["findings"] == []


class TestFormatGithub:
    def test_empty(self):
        assert format_github([]) == "repro check: no findings"

    def test_warning_line_shape(self):
        output = format_github([_finding()])
        lines = output.splitlines()
        assert lines[0] == ("::warning file=src/repro/core/mod.py,line=10,"
                            "col=5,title=REP001::bare print in library code")
        assert lines[1] == "repro check: 1 finding(s)"

    def test_col_rendered_one_based(self):
        # Finding.col is 0-based; annotations are 1-based
        output = format_github([_finding(col=0)])
        assert ",col=1," in output

    def test_property_escaping(self):
        finding = _finding(path="src/odd,dir/mod:name.py")
        output = format_github([finding])
        assert "file=src/odd%2Cdir/mod%3Aname.py," in output

    def test_message_escaping(self):
        finding = _finding(message="50% slower\nsecond line")
        output = format_github([finding])
        assert "::50%25 slower%0Asecond line" in output
        assert "\n50%" not in output


class TestRuleCatalog:
    def test_all_codes_listed(self):
        catalog = format_rule_catalog()
        for rule in RULES:
            assert rule.code in catalog
            assert rule.rationale in catalog

    def test_covers_concurrency_codes(self):
        catalog = format_rule_catalog()
        for code in ("REP008", "REP009", "REP010", "REP011", "REP012"):
            assert code in catalog
