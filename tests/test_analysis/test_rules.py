"""Fixture-snippet tests: every REPxxx rule, positive and negative."""

import textwrap

from repro.analysis import RuleEngine

SOURCE_PATH = "src/repro/models/mod.py"   # in-scope for unscoped rules
CORE_PATH = "src/repro/core/mod.py"       # in-scope for REP002/REP005
TEST_PATH = "tests/test_mod.py"           # in-scope for REP007

_ENGINE = RuleEngine()


def check(source, path=SOURCE_PATH):
    return _ENGINE.check_source(textwrap.dedent(source), path)


def codes(source, path=SOURCE_PATH):
    return [finding.code for finding in check(source, path)]


class TestGlobalRandomRule:
    def test_numpy_global_seed_flagged(self):
        findings = check("""
            import numpy as np
            def seed_everything():
                np.random.seed(0)
        """)
        assert [f.code for f in findings] == ["REP001"]
        assert "default_rng" in findings[0].message
        assert findings[0].line == 4

    def test_full_module_name_and_shuffle_flagged(self):
        assert codes("""
            import numpy
            def mix(items):
                numpy.random.shuffle(items)
        """) == ["REP001"]

    def test_stdlib_random_flagged(self):
        assert codes("""
            import random
            def pick(items):
                return random.choice(items)
        """) == ["REP001"]

    def test_seeded_generator_not_flagged(self):
        assert codes("""
            import numpy as np
            def pick(items, seed):
                rng = np.random.default_rng(seed)
                rng.shuffle(items)
                return rng.integers(0, 10)
        """) == []

    def test_flagged_in_tests_too(self):
        assert codes("""
            import numpy as np
            def test_x():
                np.random.seed(0)
        """, path=TEST_PATH) == ["REP001"]


class TestWallClockRule:
    def test_time_time_in_core_flagged(self):
        findings = check("""
            import time
            def stamp():
                return time.time()
        """, path=CORE_PATH)
        assert [f.code for f in findings] == ["REP002"]
        assert "perf_counter" in findings[0].message

    def test_datetime_now_in_resilience_flagged(self):
        assert codes("""
            from datetime import datetime
            def stamp():
                return datetime.now()
        """, path="src/repro/resilience/mod.py") == ["REP002"]

    def test_monotonic_timers_allowed(self):
        assert codes("""
            import time
            def duration():
                return time.perf_counter() - time.monotonic()
        """, path=CORE_PATH) == []

    def test_out_of_scope_package_not_flagged(self):
        assert codes("""
            import time
            def stamp():
                return time.time()
        """, path="src/repro/models/mod.py") == []


class TestRawWriteRule:
    def test_raw_open_write_flagged(self):
        findings = check("""
            def dump(path, payload):
                with open(path, "w") as fp:
                    fp.write(payload)
        """)
        assert [f.code for f in findings] == ["REP003"]
        assert "atomic" in findings[0].message

    def test_open_mode_keyword_flagged(self):
        assert codes("""
            def dump(path, payload):
                with open(path, mode="wb") as fp:
                    fp.write(payload)
        """) == ["REP003"]

    def test_read_modes_allowed(self):
        assert codes("""
            def load(path):
                with open(path) as fp:
                    return fp.read() + open(path, "rb").read().decode()
        """) == []

    def test_path_write_text_flagged(self):
        assert codes("""
            from pathlib import Path
            def write(path, text):
                Path(path).write_text(text)
        """) == ["REP003"]

    def test_json_dump_and_np_save_flagged(self):
        assert codes("""
            import json
            import numpy as np
            def dump(fp, obj, path, arr):
                json.dump(obj, fp)
                np.save(path, arr)
        """) == ["REP003", "REP003"]

    def test_write_inside_atomic_path_sanctioned(self):
        assert codes("""
            import numpy as np
            from repro.resilience.atomic import atomic_path
            def save(path, payload, arr):
                with atomic_path(path) as tmp:
                    with open(tmp, "wb") as fp:
                        fp.write(payload)
                    np.save(tmp, arr)
        """) == []

    def test_not_run_on_tests(self):
        assert codes("""
            def test_write(tmp_path):
                (tmp_path / "x.txt").write_text("scratch")
        """, path=TEST_PATH) == []


class TestMutableDefaultRule:
    def test_list_and_dict_defaults_flagged(self):
        assert codes("""
            def merge(items=[], table={}):
                return items, table
        """) == ["REP004", "REP004"]

    def test_constructor_and_kwonly_defaults_flagged(self):
        assert codes("""
            def collect(*, seen=set()):
                return seen
        """) == ["REP004"]

    def test_none_and_tuple_defaults_allowed(self):
        assert codes("""
            def merge(items=None, pair=(), name="x"):
                return items or [], pair, name
        """) == []


class TestGlobalMutationRule:
    def test_unguarded_subscript_write_flagged(self):
        findings = check("""
            _CACHE = {}
            def put(key, value):
                _CACHE[key] = value
        """, path=CORE_PATH)
        assert [f.code for f in findings] == ["REP005"]
        assert "_CACHE" in findings[0].message

    def test_unguarded_mutator_call_flagged(self):
        assert codes("""
            _ITEMS = []
            def add(x):
                _ITEMS.append(x)
        """, path=CORE_PATH) == ["REP005"]

    def test_unguarded_global_rebind_flagged(self):
        assert codes("""
            _STATE = []
            def reset():
                global _STATE
                _STATE = []
        """, path=CORE_PATH) == ["REP005"]

    def test_lock_guarded_write_sanctioned(self):
        assert codes("""
            import threading
            _LOCK = threading.Lock()
            _CACHE = {}
            def put(key, value):
                with _LOCK:
                    _CACHE[key] = value
        """, path=CORE_PATH) == []

    def test_non_lock_with_block_is_not_a_guard(self):
        """`with open(...)` is a resource manager, not a lock."""
        assert codes("""
            _CACHE = {}
            def put(path, key):
                with open(path) as handle:
                    _CACHE[key] = handle.read()
        """, path=CORE_PATH) == ["REP005"]

    def test_acquire_style_manager_sanctioned(self):
        assert codes("""
            _CACHE = {}
            def put(guard, key, value):
                with guard.acquire(timeout=1):
                    _CACHE[key] = value
        """, path=CORE_PATH) == []

    def test_import_time_mutation_allowed(self):
        assert codes("""
            _ITEMS = []
            _ITEMS.append("seed")
        """, path=CORE_PATH) == []

    def test_local_shadow_not_flagged(self):
        assert codes("""
            _CACHE = {}
            def scratch():
                local = {}
                local["k"] = 1
                return local
        """, path=CORE_PATH) == []


class TestSwallowedExceptionRule:
    def test_bare_except_flagged(self):
        findings = check("""
            def load(path):
                try:
                    return open(path).read()
                except:
                    return None
        """)
        assert [f.code for f in findings] == ["REP006"]
        assert "KeyboardInterrupt" in findings[0].message

    def test_broad_except_pass_flagged(self):
        assert codes("""
            def poke(fn):
                try:
                    fn()
                except Exception:
                    pass
        """) == ["REP006"]

    def test_broad_except_in_tuple_flagged(self):
        assert codes("""
            def poke(fn):
                try:
                    fn()
                except (ValueError, Exception):
                    pass
        """) == ["REP006"]

    def test_broad_except_that_acts_allowed(self):
        assert codes("""
            def poke(fn, journal):
                try:
                    fn()
                except Exception as error:
                    journal.record(error)
        """) == []

    def test_narrow_except_pass_allowed(self):
        assert codes("""
            def poke(fn):
                try:
                    fn()
                except ValueError:
                    pass
        """) == []


class TestArrayEqualityRule:
    def test_eq_all_in_test_flagged(self):
        findings = check("""
            def test_identity(a, b):
                assert (a == b).all()
        """, path=TEST_PATH)
        assert [f.code for f in findings] == ["REP007"]
        assert "np.array_equal" in findings[0].message

    def test_np_any_neq_in_test_flagged(self):
        assert codes("""
            import numpy as np
            def test_differs(a, b):
                assert np.any(a != b)
        """, path=TEST_PATH) == ["REP007"]

    def test_array_equal_and_allclose_allowed(self):
        assert codes("""
            import numpy as np
            def test_identity(a, b):
                assert np.array_equal(a, b)
                assert np.allclose(a, 2 * b)
        """, path=TEST_PATH) == []

    def test_not_run_on_source(self):
        assert codes("""
            def same(a, b):
                return (a == b).all()
        """, path=SOURCE_PATH) == []
