"""Edge-case tests for :mod:`repro.analysis.context` (FileContext)."""

import ast
import textwrap

from repro.analysis.context import (
    FileContext,
    dotted_name,
    noqa_codes,
)


def _context(source, path="src/repro/core/mod.py"):
    return FileContext(path, textwrap.dedent(source))


def _find(context, node_type, predicate=lambda node: True):
    for node in ast.walk(context.tree):
        if isinstance(node, node_type) and predicate(node):
            return node
    raise AssertionError(f"no {node_type.__name__} in tree")


class TestBasics:
    def test_empty_file_parses(self):
        context = _context("")
        assert context.tree.body == []
        assert context.lines == []
        assert context.source_line(1) == ""

    def test_source_line_out_of_bounds(self):
        context = _context("x = 1\n")
        assert context.source_line(0) == ""
        assert context.source_line(99) == ""
        assert context.source_line(1) == "x = 1"

    def test_is_test_detection(self):
        assert _context("", path="tests/test_mod.py").is_test
        assert _context("", path="tests/conftest.py").is_test
        assert _context("", path="src/repro/core/mod.py").is_test is False

    def test_parent_of_module_is_none(self):
        context = _context("x = 1\n")
        assert context.parent(context.tree) is None


class TestEnclosingFunction:
    def test_nested_function_returns_innermost(self):
        context = _context("""
            def outer():
                def inner():
                    value = 1
                return inner
        """)
        assign = _find(context, ast.Assign)
        enclosing = context.enclosing_function(assign)
        assert isinstance(enclosing, ast.FunctionDef)
        assert enclosing.name == "inner"

    def test_module_scope_returns_none(self):
        context = _context("value = 1\n")
        assign = _find(context, ast.Assign)
        assert context.enclosing_function(assign) is None

    def test_lambda_counts_as_function(self):
        context = _context("fn = lambda: inner()\n")
        call = _find(context, ast.Call)
        assert isinstance(context.enclosing_function(call), ast.Lambda)


class TestHeldLocks:
    def test_with_lock_held_innermost_first(self):
        context = _context("""
            import threading
            OUTER_LOCK = threading.Lock()
            INNER_MUTEX = threading.Lock()

            def work():
                with OUTER_LOCK:
                    with INNER_MUTEX:
                        value = 1
        """)
        assign = _find(context, ast.Assign,
                       lambda node: isinstance(node.targets[0], ast.Name)
                       and node.targets[0].id == "value")
        assert context.held_locks(assign) == ["INNER_MUTEX", "OUTER_LOCK"]
        assert context.inside_lock(assign)

    def test_within_bounds_the_search(self):
        context = _context("""
            import threading
            _LOCK = threading.Lock()

            def outer():
                with _LOCK:
                    def inner():
                        value = 1
        """)
        assign = _find(context, ast.Assign,
                       lambda node: isinstance(node.targets[0], ast.Name)
                       and node.targets[0].id == "value")
        inner = context.enclosing_function(assign)
        # the lock sits outside `inner`; a bounded search must not see it
        assert context.held_locks(assign, within=inner) == []
        assert context.held_locks(assign) == ["_LOCK"]

    def test_lock_like_alias_recognized_non_hinted_not(self):
        context = _context("""
            def work(state_lock, resource):
                with state_lock:
                    guarded = 1
                with resource:
                    unguarded = 1
        """)
        guarded = _find(context, ast.Assign,
                        lambda node: node.targets[0].id == "guarded")
        unguarded = _find(context, ast.Assign,
                          lambda node: node.targets[0].id == "unguarded")
        assert context.held_locks(guarded) == ["state_lock"]
        assert context.held_locks(unguarded) == []

    def test_open_is_not_a_lock(self):
        context = _context("""
            def read(path):
                with open(path) as fp:
                    data = fp.read()
        """)
        assign = _find(context, ast.Assign)
        assert not context.inside_lock(assign)

    def test_acquire_style_manager_names_receiver(self):
        context = _context("""
            def work(lk):
                with lk.acquire():
                    value = 1
        """)
        assign = _find(context, ast.Assign)
        assert context.held_locks(assign) == ["lk"]

    def test_try_finally_release_counts_as_held(self):
        context = _context("""
            import threading
            _LOCK = threading.Lock()

            def work():
                if not _LOCK.acquire(timeout=1.0):
                    return
                try:
                    value = 1
                finally:
                    _LOCK.release()
        """)
        assign = _find(context, ast.Assign,
                       lambda node: isinstance(node.targets[0], ast.Name)
                       and node.targets[0].id == "value")
        assert context.held_locks(assign) == ["_LOCK"]

    def test_release_with_args_not_counted(self):
        # `.release(n)` is a Semaphore bulk-release, not the lock idiom
        context = _context("""
            import threading
            _SEMAPHORE = threading.Semaphore(4)

            def work():
                try:
                    value = 1
                finally:
                    _SEMAPHORE.release(2)
        """)
        assign = _find(context, ast.Assign,
                       lambda node: isinstance(node.targets[0], ast.Name)
                       and node.targets[0].id == "value")
        assert context.held_locks(assign) == []


class TestAtomicPathBindings:
    def test_bound_name_collected(self):
        context = _context("""
            from repro.io.atomic import atomic_path

            def write(path):
                with atomic_path(path) as tmp:
                    target = tmp
        """)
        assign = _find(context, ast.Assign,
                       lambda node: isinstance(node.targets[0], ast.Name)
                       and node.targets[0].id == "target")
        assert context.atomic_path_bindings(assign) == {"tmp"}

    def test_other_context_managers_ignored(self):
        context = _context("""
            def write(path):
                with open(path) as fp:
                    data = fp.read()
        """)
        assign = _find(context, ast.Assign)
        assert context.atomic_path_bindings(assign) == set()


class TestDottedName:
    def test_attribute_chain(self):
        node = ast.parse("a.b.c", mode="eval").body
        assert dotted_name(node) == "a.b.c"

    def test_plain_name(self):
        node = ast.parse("x", mode="eval").body
        assert dotted_name(node) == "x"

    def test_call_result_attribute_is_none(self):
        node = ast.parse("f().attr", mode="eval").body
        assert dotted_name(node) is None


class TestNoqaCodes:
    def test_no_marker(self):
        assert noqa_codes("x = 1") is None

    def test_blanket_noqa(self):
        assert noqa_codes("x = 1  # repro: noqa") == set()

    def test_specific_codes(self):
        assert noqa_codes("x = 1  # repro: noqa[REP008, rep010]") == \
            {"REP008", "REP010"}

    def test_plain_flake8_noqa_not_matched(self):
        # only the repro-prefixed marker counts
        assert noqa_codes("x = 1  # noqa") is None
