"""``repro check`` CLI: exit-code contract (0/1/2), formats, baselines."""

import json
import textwrap

import pytest

from repro.analysis.rules import RULE_CODES
from repro.cli import main

VIOLATING = textwrap.dedent("""
    import numpy as np

    def seed_everything():
        np.random.seed(0)

    def dump(path, payload):
        with open(path, "w") as fp:
            fp.write(payload)
""")


@pytest.fixture
def clean_file(tmp_path):
    target = tmp_path / "clean.py"
    target.write_text("ANSWER = 42\n")
    return target


@pytest.fixture
def bad_tree(tmp_path):
    package = tmp_path / "src" / "repro" / "core"
    package.mkdir(parents=True)
    (package / "bad.py").write_text(VIOLATING)
    return tmp_path


class TestExitCodes:
    def test_clean_exits_zero(self, clean_file, capsys):
        assert main(["check", str(clean_file)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_findings_exit_one(self, bad_tree, capsys):
        assert main(["check", str(bad_tree)]) == 1
        assert "REP001" in capsys.readouterr().out

    def test_unknown_select_code_exits_two(self, clean_file, capsys):
        assert main(["check", str(clean_file),
                     "--select", "REP999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "absent")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_update_baseline_without_path_exits_two(self, bad_tree, capsys):
        assert main(["check", str(bad_tree), "--update-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_corrupt_baseline_exits_two(self, bad_tree, tmp_path, capsys):
        broken = tmp_path / "broken-baseline.json"
        broken.write_text("{not json")
        assert main(["check", str(bad_tree),
                     "--baseline", str(broken)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_missing_baseline_exits_two(self, bad_tree, tmp_path, capsys):
        assert main(["check", str(bad_tree),
                     "--baseline", str(tmp_path / "absent.json")]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_unwritable_baseline_dir_exits_two(self, bad_tree, tmp_path,
                                               capsys):
        # --update-baseline into a directory that does not exist must be
        # a diagnosed usage error, not an OSError traceback
        target = tmp_path / "no" / "such" / "dir" / "baseline.json"
        assert main(["check", str(bad_tree), "--baseline", str(target),
                     "--update-baseline"]) == 2
        assert "cannot write baseline" in capsys.readouterr().err


class TestFormats:
    def test_json_report(self, bad_tree, capsys):
        assert main(["check", str(bad_tree), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro.check_report"
        assert payload["count"] == 2
        assert [f["code"] for f in payload["findings"]] == ["REP001",
                                                            "REP003"]
        assert all(f["path"].endswith("bad.py")
                   for f in payload["findings"])

    def test_select_filters_rules(self, bad_tree, capsys):
        assert main(["check", str(bad_tree), "--format", "json",
                     "--select", "REP001"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert [f["code"] for f in payload["findings"]] == ["REP001"]

    def test_ignore_drops_rules(self, bad_tree, capsys):
        assert main(["check", str(bad_tree), "--format", "json",
                     "--ignore", "REP001,REP003"]) == 0
        assert json.loads(capsys.readouterr().out)["count"] == 0

    def test_list_rules_catalog(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULE_CODES:
            assert code in out

    def test_github_format_emits_annotations(self, bad_tree, capsys):
        assert main(["check", str(bad_tree), "--format", "github"]) == 1
        lines = capsys.readouterr().out.splitlines()
        warnings = [line for line in lines if line.startswith("::warning ")]
        assert len(warnings) == 2
        assert "title=REP001::" in warnings[0]
        assert ",line=" in warnings[0] and ",col=" in warnings[0]
        assert lines[-1] == "repro check: 2 finding(s)"

    def test_github_format_clean(self, clean_file, capsys):
        assert main(["check", str(clean_file),
                     "--format", "github"]) == 0
        assert "::warning" not in capsys.readouterr().out


class TestConcurrencyGate:
    def test_injected_lock_order_cycle_turns_gate_red(self, tmp_path,
                                                      capsys):
        # the acceptance fixture: an AB/BA inversion split across two
        # modules must fail a plain `repro check <tree>` run
        package = tmp_path / "src" / "repro" / "serve"
        package.mkdir(parents=True)
        (package / "fwd.py").write_text(textwrap.dedent("""
            from .locks import LOCK_A, LOCK_B

            def forward():
                with LOCK_A:
                    with LOCK_B:
                        pass
        """))
        (package / "bwd.py").write_text(textwrap.dedent("""
            from .locks import LOCK_A, LOCK_B

            def backward():
                with LOCK_B:
                    with LOCK_A:
                        pass
        """))
        assert main(["check", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REP009" in out and "cycle" in out


class TestBaselineWorkflow:
    def test_update_then_check_then_regress(self, bad_tree, tmp_path,
                                            capsys):
        baseline = tmp_path / "baseline.json"
        # 1. absorb the legacy findings
        assert main(["check", str(bad_tree), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        assert "2 finding(s) absorbed" in capsys.readouterr().out
        # 2. the baselined tree is now clean
        assert main(["check", str(bad_tree),
                     "--baseline", str(baseline)]) == 0
        # 3. a NEW violation still gates
        extra = bad_tree / "src" / "repro" / "core" / "worse.py"
        extra.write_text("import random\nrandom.seed(0)\n")
        assert main(["check", str(bad_tree),
                     "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "worse.py" in out and "REP001" in out


class TestSanitizeBackendFlag:
    def test_sanitize_with_workers_is_usage_error(self, capsys):
        assert main(["--backend", "sanitize", "native",
                     "--workers", "2"]) == 2
        assert "serial" in capsys.readouterr().err
