"""Engine mechanics: noqa, parse errors, selection, file walking —
plus the acceptance demos (injected violations caught; the repo's
seed/resume-critical packages are clean)."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import (Finding, RuleEngine, UsageError, check_paths,
                            iter_python_files, resolve_codes)
from repro.analysis.engine import PARSE_ERROR_CODE

REPO_ROOT = Path(__file__).resolve().parents[2]


def check(source, path="src/repro/models/mod.py", **engine_kwargs):
    engine = RuleEngine(**engine_kwargs)
    return engine.check_source(textwrap.dedent(source), path)


SEEDING = """
    import numpy as np
    def seed_everything():
        np.random.seed(0)
"""


class TestNoqa:
    def test_coded_noqa_suppresses_that_code(self):
        assert check("""
            import numpy as np
            def seed_everything():
                np.random.seed(0)  # repro: noqa[REP001]
        """) == []

    def test_blanket_noqa_suppresses_everything(self):
        assert check("""
            import numpy as np
            def seed_everything():
                np.random.seed(0)  # repro: noqa
        """) == []

    def test_noqa_for_other_code_does_not_suppress(self):
        findings = check("""
            import numpy as np
            def seed_everything():
                np.random.seed(0)  # repro: noqa[REP003]
        """)
        assert [f.code for f in findings] == ["REP001"]

    def test_plain_noqa_comment_is_not_the_marker(self):
        """Only the namespaced ``# repro: noqa`` form counts."""
        findings = check("""
            import numpy as np
            def seed_everything():
                np.random.seed(0)  # noqa
        """)
        assert [f.code for f in findings] == ["REP001"]


class TestParseErrors:
    def test_syntax_error_yields_rep000(self):
        findings = check("def broken(:\n    pass\n")
        assert len(findings) == 1
        assert findings[0].code == PARSE_ERROR_CODE
        assert "does not parse" in findings[0].message

    def test_rep000_finding_does_not_abort_other_files(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        (tmp_path / "seedy.py").write_text(textwrap.dedent(SEEDING))
        findings = RuleEngine().check_paths([tmp_path])
        assert [f.code for f in findings] == [PARSE_ERROR_CODE, "REP001"]


class TestSelection:
    def test_select_restricts_rules(self):
        source = """
            import numpy as np
            def f(bad=[]):
                np.random.seed(0)
        """
        assert [f.code for f in check(source, select={"REP004"})] == ["REP004"]

    def test_ignore_drops_rules(self):
        source = """
            import numpy as np
            def f(bad=[]):
                np.random.seed(0)
        """
        assert [f.code for f in check(source, ignore={"REP001"})] == ["REP004"]

    def test_resolve_codes_parses_and_normalizes(self):
        assert resolve_codes("rep001, REP003", "--select") == {"REP001",
                                                               "REP003"}
        assert resolve_codes(None, "--select") is None
        assert resolve_codes("", "--select") is None

    def test_resolve_codes_rejects_unknown(self):
        with pytest.raises(UsageError, match="REP999"):
            resolve_codes("REP999", "--select")


class TestFileWalking:
    def test_skips_pycache_and_sorts(self, tmp_path):
        (tmp_path / "b.py").write_text("B = 1\n")
        (tmp_path / "a.py").write_text("A = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("J = 1\n")
        names = [p.name for p in iter_python_files([tmp_path])]
        assert names == ["a.py", "b.py"]

    def test_missing_path_is_usage_error(self, tmp_path):
        with pytest.raises(UsageError, match="does not exist"):
            list(iter_python_files([tmp_path / "nope"]))

    def test_single_file_path_accepted(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("X = 1\n")
        assert list(iter_python_files([target])) == [target]


class TestFindings:
    def test_describe_format(self):
        finding = Finding(code="REP001", message="msg",
                          path="src/m.py", line=3, col=4, text="x()")
        assert finding.describe() == "src/m.py:3:5: REP001 msg"

    def test_round_trips_through_dict(self):
        finding = Finding(code="REP001", message="msg",
                          path="src/m.py", line=3, col=4, text="x()")
        from repro.analysis import finding_from_dict
        assert finding_from_dict(finding.to_dict()) == finding


class TestInjectedViolations:
    """Acceptance: the engine catches REP001/REP003 injected into a
    fixture tree shaped like the real package (what the CI gate runs)."""

    @pytest.fixture
    def fixture_tree(self, tmp_path):
        package = tmp_path / "src" / "repro" / "core"
        package.mkdir(parents=True)
        (package / "bad.py").write_text(textwrap.dedent("""
            import numpy as np

            def seed_everything():
                np.random.seed(0)

            def dump(path, payload):
                with open(path, "w") as fp:
                    fp.write(payload)
        """))
        return tmp_path

    def test_engine_flags_both_violations(self, fixture_tree):
        findings = check_paths([fixture_tree])
        assert [f.code for f in findings] == ["REP001", "REP003"]
        assert all(f.path.endswith("src/repro/core/bad.py")
                   for f in findings)

    def test_cli_gate_exits_nonzero(self, fixture_tree, capsys):
        from repro.cli import main
        assert main(["check", str(fixture_tree)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out and "REP003" in out
        assert "2 finding(s)" in out


class TestRepoIsClean:
    """Acceptance: the dogfooded packages carry zero findings with no
    baseline — every live violation there was fixed, not baselined."""

    def test_core_resilience_parallel_clean(self):
        src = REPO_ROOT / "src" / "repro"
        findings = check_paths([src / "core", src / "resilience",
                                src / "parallel"])
        assert findings == []

    def test_legacy_findings_fixed_and_baseline_empty(self):
        # the two REP005 sites the baseline used to absorb
        # (models/summary, train/trainer) are fixed for real now, and
        # the committed baseline must stay empty — new findings get
        # fixed, not absorbed
        from repro.analysis import load_baseline
        src = REPO_ROOT / "src" / "repro"
        findings = check_paths([src / "models" / "summary.py",
                                src / "train" / "trainer.py"])
        assert findings == []
        baseline = load_baseline(REPO_ROOT / ".repro-check-baseline.json")
        assert not baseline

    def test_serve_package_clean(self):
        findings = check_paths([REPO_ROOT / "src" / "repro" / "serve"])
        assert findings == []
