"""Baseline files: multiset absorption, line-insensitivity, errors."""

import json

import pytest

from repro.analysis import (BaselineError, Finding, apply_baseline,
                            load_baseline, write_baseline)


def make_finding(line=10, text="_CACHE[key] = value", code="REP005",
                 path="src/repro/models/mod.py"):
    return Finding(code=code, message="write outside lock", path=path,
                   line=line, col=4, text=text)


class TestRoundTrip:
    def test_written_baseline_absorbs_its_findings(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        findings = [make_finding(), make_finding(line=20, code="REP001",
                                                 text="np.random.seed(0)")]
        write_baseline(baseline_path, findings)
        baseline = load_baseline(baseline_path)
        assert apply_baseline(findings, baseline) == []

    def test_document_format(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, [make_finding()])
        payload = json.loads(baseline_path.read_text())
        assert payload["format"] == "repro.check_baseline"
        assert payload["findings"] == [{"path": "src/repro/models/mod.py",
                                        "code": "REP005",
                                        "text": "_CACHE[key] = value"}]


class TestMatching:
    def test_line_number_changes_stay_absorbed(self, tmp_path):
        """Edits above a legacy finding shift its line, not its entry."""
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, [make_finding(line=10)])
        moved = [make_finding(line=57)]
        assert apply_baseline(moved, load_baseline(baseline_path)) == []

    def test_changed_text_resurfaces(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, [make_finding()])
        edited = [make_finding(text="_CACHE[key] = (value, stamp)")]
        assert apply_baseline(edited,
                              load_baseline(baseline_path)) == edited

    def test_multiset_semantics(self, tmp_path):
        """One baseline entry absorbs at most one live finding, so a
        copy-pasted violation surfaces as fresh."""
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, [make_finding()])
        duplicated = [make_finding(line=10), make_finding(line=30)]
        fresh = apply_baseline(duplicated, load_baseline(baseline_path))
        assert fresh == [make_finding(line=30)]


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(BaselineError, match="cannot read"):
            load_baseline(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(BaselineError, match="not valid JSON"):
            load_baseline(bad)

    def test_wrong_format_marker(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "something.else",
                                   "findings": []}))
        with pytest.raises(BaselineError, match="check_baseline"):
            load_baseline(bad)

    def test_findings_row_missing_key(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "repro.check_baseline",
                                   "version": 1,
                                   "findings": [{"path": "a.py",
                                                 "code": "REP001"}]}))
        with pytest.raises(BaselineError, match="malformed findings row"):
            load_baseline(bad)

    def test_findings_row_not_a_dict(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "repro.check_baseline",
                                   "version": 1,
                                   "findings": [["a.py", "REP001", "x"]]}))
        with pytest.raises(BaselineError, match="malformed findings row"):
            load_baseline(bad)
