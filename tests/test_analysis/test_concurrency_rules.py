"""Fixture-snippet tests for the concurrency rules (REP008–REP012).

Each rule gets positive, negative, and noqa-suppression coverage; the
REP009 lock-order graph additionally gets cross-file cycle tests
through ``RuleEngine.check_paths`` (the project-wide finalize phase).
"""

import textwrap

from repro.analysis import RuleEngine

SOURCE_PATH = "src/repro/serve/mod.py"
TEST_PATH = "tests/test_mod.py"

_ENGINE = RuleEngine()


def check(source, path=SOURCE_PATH):
    return _ENGINE.check_source(textwrap.dedent(source), path)


def codes(source, path=SOURCE_PATH):
    return [finding.code for finding in check(source, path)]


class TestGuardedStateRule:
    GUARDED_CLASS = """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []
                self.count = 0

            def add(self, item):
                with self._lock:
                    self._items.append(item)
                    self.count += 1
        %s
    """

    def test_unguarded_write_of_guarded_attr_flagged(self):
        findings = check(self.GUARDED_CLASS % """
            def reset(self):
                self._items.clear()
        """)
        assert [f.code for f in findings] == ["REP008"]
        assert "self._items" in findings[0].message
        assert "Box.reset" in findings[0].message

    def test_unguarded_augassign_flagged(self):
        assert codes(self.GUARDED_CLASS % """
            def bump(self):
                self.count += 1
        """) == ["REP008"]

    def test_unguarded_subscript_write_flagged(self):
        assert codes("""
            import threading

            class Table:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._rows = {}

                def put(self, key, row):
                    with self._lock:
                        self._rows[key] = row

                def evict(self, key):
                    del self._rows[key]
        """) == ["REP008"]

    def test_guarded_write_not_flagged(self):
        assert codes(self.GUARDED_CLASS % """
            def reset(self):
                with self._lock:
                    self._items.clear()
        """) == []

    def test_init_writes_exempt(self):
        # construction happens-before sharing: __init__ rebinding the
        # guarded attribute is not a race
        assert codes(self.GUARDED_CLASS % "") == []

    def test_try_finally_acquire_counts_as_guarded(self):
        assert codes("""
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, item):
                    with self._lock:
                        self._items.append(item)

                def drain(self):
                    if not self._lock.acquire(blocking=False):
                        return
                    try:
                        self._items.clear()
                    finally:
                        self._lock.release()
        """) == []

    def test_attr_never_guarded_not_flagged(self):
        # an attribute no site guards is not "shared under this lock"
        assert codes(self.GUARDED_CLASS % """
            def rename(self, name):
                self.name = name
        """) == []

    def test_class_without_lock_not_flagged(self):
        assert codes("""
            class Plain:
                def __init__(self):
                    self._items = []

                def add(self, item):
                    self._items.append(item)
        """) == []

    def test_noqa_suppresses(self):
        assert codes(self.GUARDED_CLASS % """
            def reset(self):
                self._items.clear()   # repro: noqa[REP008]
        """) == []

    def test_not_run_on_tests(self):
        assert codes(self.GUARDED_CLASS % """
            def reset(self):
                self._items.clear()
        """, path=TEST_PATH) == []


class TestLockOrderRule:
    def test_ab_ba_inversion_flagged_at_both_sites(self):
        findings = check("""
            import threading
            LOCK_A = threading.Lock()
            LOCK_B = threading.Lock()

            def forward():
                with LOCK_A:
                    with LOCK_B:
                        pass

            def backward():
                with LOCK_B:
                    with LOCK_A:
                        pass
        """)
        assert [f.code for f in findings] == ["REP009", "REP009"]
        assert "cycle" in findings[0].message
        assert {f.line for f in findings} == {8, 13}

    def test_three_lock_cycle_flagged(self):
        findings = check("""
            import threading
            LOCK_A = threading.Lock()
            LOCK_B = threading.Lock()
            LOCK_C = threading.Lock()

            def one():
                with LOCK_A:
                    with LOCK_B:
                        pass

            def two():
                with LOCK_B:
                    with LOCK_C:
                        pass

            def three():
                with LOCK_C:
                    with LOCK_A:
                        pass
        """)
        assert [f.code for f in findings] == ["REP009"] * 3

    def test_consistent_order_clean(self):
        assert codes("""
            import threading
            LOCK_A = threading.Lock()
            LOCK_B = threading.Lock()

            def one():
                with LOCK_A:
                    with LOCK_B:
                        pass

            def two():
                with LOCK_A:
                    with LOCK_B:
                        pass
        """) == []

    def test_self_nesting_flagged(self):
        findings = check("""
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        with self._lock:
                            pass
        """)
        assert [f.code for f in findings] == ["REP009"]
        assert "non-reentrant" in findings[0].message
        assert "Box._lock" in findings[0].message

    def test_multi_item_with_orders_left_to_right(self):
        # `with a, b:` then `with b: with a:` is an inversion
        assert codes("""
            import threading
            LOCK_A = threading.Lock()
            LOCK_B = threading.Lock()

            def one():
                with LOCK_A, LOCK_B:
                    pass

            def two():
                with LOCK_B:
                    with LOCK_A:
                        pass
        """) == ["REP009", "REP009"]

    def test_declared_order_violation_flagged_without_cycle(self):
        findings = check("""
            import threading
            _LOCK_ORDER = ("LOCK_A", "LOCK_B")
            LOCK_A = threading.Lock()
            LOCK_B = threading.Lock()

            def backward():
                with LOCK_B:
                    with LOCK_A:
                        pass
        """)
        assert [f.code for f in findings] == ["REP009"]
        assert "declared lock order" in findings[0].message

    def test_declared_order_followed_clean(self):
        assert codes("""
            import threading
            _LOCK_ORDER = ("LOCK_A", "LOCK_B")
            LOCK_A = threading.Lock()
            LOCK_B = threading.Lock()

            def forward():
                with LOCK_A:
                    with LOCK_B:
                        pass
        """) == []

    def test_noqa_removes_the_edge(self):
        # suppressing one site removes its edge, so the cycle dissolves
        # and the opposite site is clean too
        assert codes("""
            import threading
            LOCK_A = threading.Lock()
            LOCK_B = threading.Lock()

            def forward():
                with LOCK_A:
                    with LOCK_B:
                        pass

            def backward():
                with LOCK_B:
                    with LOCK_A:   # repro: noqa[REP009]
                        pass
        """) == []

    def test_cross_file_cycle_through_check_paths(self, tmp_path):
        package = tmp_path / "src" / "repro" / "servelike"
        package.mkdir(parents=True)
        (package / "mod_a.py").write_text(textwrap.dedent("""
            import threading
            from .locks import LOCK_A, LOCK_B

            def forward():
                with LOCK_A:
                    with LOCK_B:
                        pass
        """))
        (package / "mod_b.py").write_text(textwrap.dedent("""
            import threading
            from .locks import LOCK_A, LOCK_B

            def backward():
                with LOCK_B:
                    with LOCK_A:
                        pass
        """))
        findings = _ENGINE.check_paths([tmp_path])
        assert [f.code for f in findings] == ["REP009", "REP009"]
        assert {f.path.rsplit("/", 1)[-1] for f in findings} == \
            {"mod_a.py", "mod_b.py"}

    def test_cross_file_consistent_order_clean(self, tmp_path):
        package = tmp_path / "src" / "repro" / "servelike"
        package.mkdir(parents=True)
        for name in ("mod_a.py", "mod_b.py"):
            (package / name).write_text(textwrap.dedent("""
                import threading
                from .locks import LOCK_A, LOCK_B

                def forward():
                    with LOCK_A:
                        with LOCK_B:
                            pass
            """))
        assert _ENGINE.check_paths([tmp_path]) == []

    def test_try_finally_hold_contributes_edges(self):
        # the acquire(timeout)/finally-release idiom is a hold: taking
        # another lock inside it is an edge, and an opposite `with`
        # nesting elsewhere closes the cycle
        findings = check("""
            import threading

            class Manager:
                def __init__(self):
                    self._a_lock = threading.Lock()
                    self._b_lock = threading.Lock()

                def forward(self):
                    if not self._a_lock.acquire(timeout=1.0):
                        return
                    try:
                        with self._b_lock:
                            pass
                    finally:
                        self._a_lock.release()

                def backward(self):
                    with self._b_lock:
                        with self._a_lock:
                            pass
        """)
        assert [f.code for f in findings] == ["REP009", "REP009"]


class TestBlockingUnderLockRule:
    def test_sleep_under_lock_flagged(self):
        findings = check("""
            import threading, time
            _LOCK = threading.Lock()

            def pause():
                with _LOCK:
                    time.sleep(0.5)
        """)
        assert [f.code for f in findings] == ["REP010"]
        assert "time.sleep" in findings[0].message

    def test_socket_recv_under_lock_flagged(self):
        assert codes("""
            import threading
            _LOCK = threading.Lock()

            def pump(sock):
                with _LOCK:
                    return sock.recv(4096)
        """) == ["REP010"]

    def test_unbounded_join_under_lock_flagged(self):
        assert codes("""
            import threading
            _LOCK = threading.Lock()

            def stop(worker):
                with _LOCK:
                    worker.join()
        """) == ["REP010"]

    def test_bounded_join_allowed(self):
        assert codes("""
            import threading
            _LOCK = threading.Lock()

            def stop(worker):
                with _LOCK:
                    worker.join(timeout=1.0)
        """) == []

    def test_str_join_not_confused(self):
        # ", ".join(parts) always has a positional argument
        assert codes("""
            import threading
            _LOCK = threading.Lock()

            def fmt(parts):
                with _LOCK:
                    return ", ".join(parts)
        """) == []

    def test_unbounded_event_wait_under_lock_flagged(self):
        assert codes("""
            import threading
            _LOCK = threading.Lock()

            def sync(event):
                with _LOCK:
                    event.wait()
        """) == ["REP010"]

    def test_condition_wait_on_held_condition_allowed(self):
        # Condition.wait releases the lock it holds — that is the point
        assert codes("""
            import threading

            class Box:
                def __init__(self):
                    self._cond = threading.Condition()

                def take(self):
                    with self._cond:
                        self._cond.wait()
        """) == []

    def test_timed_wait_allowed(self):
        assert codes("""
            import threading
            _LOCK = threading.Lock()

            def sync(event):
                with _LOCK:
                    event.wait(1.0)
        """) == []

    def test_unbounded_queue_get_under_lock_flagged(self):
        assert codes("""
            import threading
            _LOCK = threading.Lock()

            def take(task_queue):
                with _LOCK:
                    return task_queue.get()
        """) == ["REP010"]

    def test_queue_get_with_timeout_allowed(self):
        assert codes("""
            import threading
            _LOCK = threading.Lock()

            def take(task_queue):
                with _LOCK:
                    return task_queue.get(timeout=1.0)
        """) == []

    def test_open_under_lock_flagged(self):
        assert codes("""
            import threading
            _LOCK = threading.Lock()

            def read(path):
                with _LOCK:
                    with open(path) as fp:
                        return fp.read()
        """) == ["REP010"]

    def test_file_lock_exempt(self):
        # FileLock exists to serialize file I/O — reading under it is
        # the sanctioned pattern, not a hazard
        assert codes("""
            from repro.parallel.filelock import FileLock

            def read(path):
                with FileLock(str(path) + ".lock"):
                    with open(path) as fp:
                        return fp.read()
        """) == []

    def test_blocking_call_outside_lock_clean(self):
        assert codes("""
            import time

            def pause():
                time.sleep(0.5)
        """) == []

    def test_noqa_suppresses(self):
        assert codes("""
            import threading, time
            _LOCK = threading.Lock()

            def pause():
                with _LOCK:
                    time.sleep(0.5)   # repro: noqa[REP010]
        """) == []


class TestThreadDaemonRule:
    def test_thread_without_daemon_flagged(self):
        findings = check("""
            import threading

            def start(fn):
                worker = threading.Thread(target=fn)
                worker.start()
                return worker
        """)
        assert [f.code for f in findings] == ["REP011"]
        assert "daemon" in findings[0].message

    def test_thread_with_daemon_true_allowed(self):
        assert codes("""
            import threading

            def start(fn):
                worker = threading.Thread(target=fn, daemon=True)
                worker.start()
                return worker
        """) == []

    def test_thread_with_daemon_false_allowed(self):
        # explicit daemon=False is a decision, not an omission
        assert codes("""
            import threading

            def start(fn):
                worker = threading.Thread(target=fn, daemon=False)
                worker.start()
                return worker
        """) == []

    def test_bare_thread_import_flagged(self):
        assert codes("""
            from threading import Thread

            def start(fn):
                return Thread(target=fn)
        """) == ["REP011"]

    def test_subclass_without_daemon_flagged(self):
        findings = check("""
            import threading

            class Worker(threading.Thread):
                def __init__(self, fn):
                    super().__init__(name="worker")
                    self.fn = fn
        """)
        assert [f.code for f in findings] == ["REP011"]
        assert "Worker" in findings[0].message

    def test_subclass_with_daemon_kwarg_allowed(self):
        assert codes("""
            import threading

            class Worker(threading.Thread):
                def __init__(self, fn):
                    super().__init__(daemon=True, name="worker")
                    self.fn = fn
        """) == []

    def test_subclass_setting_daemon_attr_allowed(self):
        assert codes("""
            import threading

            class Worker(threading.Thread):
                def __init__(self, fn):
                    super().__init__(name="worker")
                    self.daemon = True
                    self.fn = fn
        """) == []

    def test_not_run_on_tests(self):
        assert codes("""
            import threading

            def start(fn):
                return threading.Thread(target=fn)
        """, path=TEST_PATH) == []

    def test_noqa_suppresses(self):
        assert codes("""
            import threading

            def start(fn):
                return threading.Thread(target=fn)   # repro: noqa[REP011]
        """) == []


class TestConditionDisciplineRule:
    def test_notify_outside_lock_flagged(self):
        findings = check("""
            import threading

            class Box:
                def __init__(self):
                    self._cond = threading.Condition()

                def poke(self):
                    self._cond.notify()
        """)
        assert [f.code for f in findings] == ["REP012"]
        assert "with self._cond" in findings[0].message

    def test_wait_inside_lock_allowed(self):
        assert codes("""
            import threading

            class Box:
                def __init__(self):
                    self._cond = threading.Condition()

                def take(self):
                    with self._cond:
                        self._cond.wait()
                        self._cond.notify_all()
        """) == []

    def test_wait_under_different_lock_flagged(self):
        # REP012 for the wrong lock, and REP010 because the unbounded
        # wait blocks while `self._lock` stays held
        assert codes("""
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition()

                def take(self):
                    with self._lock:
                        self._cond.wait()
        """) == ["REP010", "REP012"]

    def test_discovered_condition_attr_without_name_hint(self):
        # the prepass learns `self._ready = threading.Condition()` even
        # though the name itself carries no hint
        assert codes("""
            import threading

            class Box:
                def __init__(self):
                    self._ready = threading.Condition()

                def poke(self):
                    self._ready.notify()
        """) == ["REP012"]

    def test_non_condition_wait_not_flagged(self):
        # an Event's wait needs no lock held
        assert codes("""
            def sync(event):
                event.wait(1.0)
        """) == []

    def test_noqa_suppresses(self):
        assert codes("""
            import threading

            class Box:
                def __init__(self):
                    self._cond = threading.Condition()

                def poke(self):
                    self._cond.notify()   # repro: noqa[REP012]
        """) == []
