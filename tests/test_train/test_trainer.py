"""Offline robust-training pipeline: trainer, evaluation, PGD, cache."""

import numpy as np
import pytest

from repro.data.synthetic import make_synth_cifar
from repro.models.wide_resnet import wide_resnet40_2
from repro.train import Trainer, TrainConfig, evaluate, pgd_attack
from repro.train.trainer import pretrain_robust


@pytest.fixture(scope="module")
def tiny_data():
    return make_synth_cifar(256, size=16, seed=0)


def tiny_model():
    return wide_resnet40_2(depth=10, widen_factor=1, base=4)


class TestTrainer:
    def test_loss_decreases(self, tiny_data):
        model = tiny_model()
        trainer = Trainer(model, TrainConfig(epochs=3, batch_size=64, lr=0.08,
                                             use_augmix=False, seed=0))
        history = trainer.fit(tiny_data)
        assert len(history) == 3
        assert history[-1]["loss"] < history[0]["loss"]

    def test_accuracy_improves_over_chance(self, tiny_data):
        model = tiny_model()
        Trainer(model, TrainConfig(epochs=12, batch_size=32, lr=0.1,
                                   use_augmix=False, seed=0)).fit(tiny_data)
        error = evaluate(model, tiny_data.images, tiny_data.labels)
        assert error < 0.45   # chance is 0.9

    def test_model_left_in_eval_mode(self, tiny_data):
        model = tiny_model()
        Trainer(model, TrainConfig(epochs=1, use_augmix=False)).fit(tiny_data)
        assert not model.training

    def test_val_error_recorded(self, tiny_data):
        model = tiny_model()
        history = Trainer(model, TrainConfig(epochs=1, use_augmix=False)).fit(
            tiny_data, val=tiny_data.subset(64))
        assert "val_error" in history[0]

    def test_cosine_lr_schedule_decays(self):
        trainer = Trainer(tiny_model(), TrainConfig(lr=0.1, epochs=2))
        assert trainer._lr_at(0, 100) == pytest.approx(0.1)
        assert trainer._lr_at(50, 100) == pytest.approx(0.05)
        assert trainer._lr_at(100, 100) == pytest.approx(0.0, abs=1e-9)

    def test_augmix_path_runs(self, tiny_data):
        model = tiny_model()
        history = Trainer(model, TrainConfig(epochs=1, batch_size=64,
                                             use_augmix=True)).fit(
            tiny_data.subset(128))
        assert np.isfinite(history[0]["loss"])


class TestEvaluate:
    def test_perfect_and_worst_case(self, tiny_data):
        class Oracle:
            training = False
            def eval(self):
                return self

            def train(self, mode=True):
                return self
            def __call__(self, x):
                from repro.tensor import Tensor
                logits = np.full((len(x.data), 10), -10.0, dtype=np.float32)
                return Tensor(logits)
        # all-equal logits -> argmax 0 -> error = fraction of labels != 0
        error = evaluate(Oracle(), tiny_data.images, tiny_data.labels)
        expected = float((tiny_data.labels != 0).mean())
        assert error == pytest.approx(expected)

    def test_restores_training_mode(self, tiny_data):
        model = tiny_model()
        model.train()
        evaluate(model, tiny_data.images[:32], tiny_data.labels[:32])
        assert model.training


class TestPGD:
    def test_perturbation_bounded(self, tiny_data):
        model = tiny_model()
        images = tiny_data.images[:8]
        adv = pgd_attack(model, images, tiny_data.labels[:8],
                         epsilon=4 / 255, steps=2)
        assert np.abs(adv - images).max() <= 4 / 255 + 1e-6
        assert adv.min() >= 0.0 and adv.max() <= 1.0

    def test_attack_increases_loss(self, tiny_data):
        from repro.tensor import Tensor
        from repro.tensor import functional as F
        model = tiny_model()
        Trainer(model, TrainConfig(epochs=2, batch_size=64, lr=0.08,
                                   use_augmix=False)).fit(tiny_data)
        images, labels = tiny_data.images[:32], tiny_data.labels[:32]
        adv = pgd_attack(model, images, labels, epsilon=8 / 255, steps=4)
        model.eval()
        clean_loss = F.cross_entropy(model(Tensor(images)), labels).item()
        adv_loss = F.cross_entropy(model(Tensor(adv)), labels).item()
        assert adv_loss > clean_loss

    def test_model_weights_unchanged_by_attack(self, tiny_data):
        model = tiny_model()
        before = model.state_dict()
        pgd_attack(model, tiny_data.images[:4], tiny_data.labels[:4], steps=1)
        after = model.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])


class TestPretrainCache:
    def test_memory_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        first = pretrain_robust("wrn40_2", image_size=12, train_samples=128,
                                epochs=1, seed=11)
        second = pretrain_robust("wrn40_2", image_size=12, train_samples=128,
                                 epochs=1, seed=11)
        state1, state2 = first.state_dict(), second.state_dict()
        for key in state1:
            np.testing.assert_array_equal(state1[key], state2[key])
        # the disk cache file exists
        assert list(tmp_path.glob("robust_*.npz"))

    def test_adversarial_default_only_for_resnet18(self):
        # exercised through the config hash: different keys -> different files
        from repro.train.trainer import _MEMORY_CACHE
        keys_before = set(_MEMORY_CACHE)
        pretrain_robust("wrn40_2", image_size=12, train_samples=64, epochs=1,
                        seed=12, use_disk_cache=False)
        new_keys = set(_MEMORY_CACHE) - keys_before
        assert any(key[4] is False for key in new_keys)  # adversarial=False
