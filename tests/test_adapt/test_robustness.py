"""Failure injection: degenerate inputs through the adaptation stack.

Edge deployments see pathological batches — dead sensors (constant
frames), saturated pixels, single-sample batches.  The adaptation
algorithms must stay finite and recoverable through all of them.
"""

import numpy as np
import pytest

from repro.adapt import BNNorm, BNOpt, NoAdapt, bn_parameters
from repro.models import build_model
from repro.tensor import Tensor
from repro.tensor import functional as F


@pytest.fixture
def model():
    return build_model("wrn40_2", "tiny")


class TestDegenerateBatches:
    def test_constant_batch_stays_finite(self, model):
        """A dead sensor: every pixel identical (zero variance input)."""
        batch = np.full((8, 3, 16, 16), 0.5, dtype=np.float32)
        for method in (NoAdapt(), BNNorm(), BNOpt(lr=1e-3)):
            method.prepare(model)
            logits = method.forward(batch)
            assert np.isfinite(logits).all(), method.name
            method.reset()

    def test_saturated_batch(self, model):
        batch = np.ones((8, 3, 16, 16), dtype=np.float32)
        method = BNOpt(lr=1e-3).prepare(model)
        logits = method.forward(batch)
        assert np.isfinite(logits).all()
        for p in bn_parameters(model):
            assert np.isfinite(p.data).all()
        method.reset()

    def test_single_sample_batch(self, model):
        """Batch statistics from one sample: spatial variance only."""
        batch = np.random.default_rng(0).standard_normal(
            (1, 3, 16, 16)).astype(np.float32)
        for method in (BNNorm(), BNOpt(lr=1e-3)):
            method.prepare(model)
            logits = method.forward(batch)
            assert logits.shape == (1, 10)
            assert np.isfinite(logits).all()
            method.reset()

    def test_recovery_after_pathological_batch(self, model, rng):
        """A garbage batch must not leave the model permanently broken
        when episodic reset is used."""
        good = rng.standard_normal((8, 3, 16, 16)).astype(np.float32)
        garbage = np.zeros((8, 3, 16, 16), dtype=np.float32)
        method = BNOpt(lr=1e-2).prepare(model)
        reference = method.forward(good).copy()
        method.reset()
        method.forward(garbage)
        method.reset()
        after = method.forward(good)
        np.testing.assert_allclose(after, reference, atol=1e-4)

    def test_extreme_scale_input(self, model):
        """Inputs far outside [0, 1]: BN normalization absorbs the scale."""
        batch = np.random.default_rng(0).standard_normal(
            (8, 3, 16, 16)).astype(np.float32) * 1e3
        method = BNNorm().prepare(model)
        logits = method.forward(batch)
        assert np.isfinite(logits).all()
        method.reset()


class TestEntropyEdgeCases:
    def test_entropy_of_huge_logits_finite(self):
        logits = Tensor(np.array([[1e4, -1e4, 0.0]]), requires_grad=True)
        loss = F.entropy_loss(logits)
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.isfinite(logits.grad).all()

    def test_entropy_of_identical_logits(self):
        logits = Tensor(np.zeros((4, 10)), requires_grad=True)
        loss = F.entropy_loss(logits)
        loss.backward()
        # gradient of entropy at the uniform point is zero
        np.testing.assert_allclose(logits.grad, 0.0, atol=1e-7)


class TestBNStatEdgeCases:
    def test_bn_train_zero_variance_channel(self):
        from repro import nn
        bn = nn.BatchNorm2d(2)
        x = np.zeros((4, 2, 3, 3), dtype=np.float32)
        x[:, 1] = 7.0   # constant but nonzero channel
        out = bn(Tensor(x))
        assert np.isfinite(out.data).all()
        # constant channel normalizes to beta (zero)
        np.testing.assert_allclose(out.data[:, 1], 0.0, atol=1e-3)

    def test_bn_opt_step_with_zero_variance_input(self, model):
        method = BNOpt(lr=1e-3).prepare(model)
        method.forward(np.zeros((4, 3, 16, 16), dtype=np.float32))
        for p in bn_parameters(model):
            assert np.isfinite(p.data).all()
        method.reset()
