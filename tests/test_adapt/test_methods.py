"""Adaptation-method semantics: what each method may and may not touch."""

import numpy as np
import pytest

from repro import nn
from repro.adapt import (
    BNNorm,
    BNOpt,
    NoAdapt,
    METHOD_NAMES,
    bn_layers,
    bn_parameters,
    build_method,
    configure_bn_only_grads,
)
from repro.models import build_model


@pytest.fixture
def model():
    return build_model("wrn40_2", "tiny")


@pytest.fixture
def batch(rng):
    return rng.standard_normal((16, 3, 16, 16)).astype(np.float32)


class TestUtilities:
    def test_bn_layers_found(self, model):
        layers = bn_layers(model)
        assert layers and all(isinstance(layer, nn.BatchNorm2d) for layer in layers)

    def test_bn_parameters_are_affine_pairs(self, model):
        params = list(bn_parameters(model))
        assert len(params) == 2 * len(bn_layers(model))

    def test_configure_bn_only_grads_count(self, model):
        count = configure_bn_only_grads(model)
        expected = sum(2 * layer.num_features for layer in bn_layers(model))
        assert count == expected
        for name, p in model.named_parameters():
            is_bn_affine = any(p is q for q in bn_parameters(model))
            assert p.requires_grad == is_bn_affine

    def test_build_method_factory(self):
        for name in METHOD_NAMES:
            assert build_method(name).name == name
        with pytest.raises(KeyError):
            build_method("bn_magic")


class TestNoAdapt:
    def test_flags(self):
        method = NoAdapt()
        assert not method.does_backward and not method.adapts_bn_stats

    def test_model_state_untouched(self, model, batch):
        method = NoAdapt().prepare(model)
        before = model.state_dict()
        method.forward(batch)
        after = model.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_model_in_eval_mode(self, model, batch):
        NoAdapt().prepare(model)
        assert not model.training

    def test_forward_before_prepare_raises(self, batch):
        with pytest.raises(RuntimeError):
            NoAdapt().forward(batch)

    def test_returns_logits(self, model, batch):
        logits = NoAdapt().prepare(model).forward(batch)
        assert logits.shape == (16, 10)

    def test_deterministic(self, model, batch):
        method = NoAdapt().prepare(model)
        np.testing.assert_array_equal(method.forward(batch),
                                      method.forward(batch))


class TestBNNorm:
    def test_flags(self):
        method = BNNorm()
        assert method.adapts_bn_stats and not method.does_backward

    def test_updates_running_stats_only(self, model, batch):
        method = BNNorm().prepare(model)
        weights_before = {name: p.data.copy()
                          for name, p in model.named_parameters()}
        stats_before = [layer.running_mean.copy() for layer in bn_layers(model)]
        method.forward(batch + 2.0)   # shifted batch
        for name, p in model.named_parameters():
            np.testing.assert_array_equal(p.data, weights_before[name])
        changed = any(not np.allclose(layer.running_mean, saved)
                      for layer, saved in zip(bn_layers(model), stats_before))
        assert changed
        assert method.batches_adapted == 1

    def test_momentum_validation(self):
        with pytest.raises(ValueError):
            BNNorm(momentum=0.0)
        with pytest.raises(ValueError):
            BNNorm(momentum=1.5)

    def test_momentum_one_tracks_current_batch(self, model, batch):
        method = BNNorm(momentum=1.0).prepare(model)
        method.forward(batch)
        first_bn = bn_layers(model)[0]
        # running mean equals the batch mean of its input exactly
        assert first_bn.momentum == 1.0

    def test_model_in_train_mode(self, model):
        BNNorm().prepare(model)
        assert model.training

    def test_reset_restores_stats(self, model, batch):
        method = BNNorm().prepare(model)
        original = [layer.running_mean.copy() for layer in bn_layers(model)]
        method.forward(batch + 3.0)
        method.reset()
        for layer, before in zip(bn_layers(model), original):
            np.testing.assert_allclose(layer.running_mean, before)
        assert method.batches_adapted == 0


class TestBNOpt:
    def test_flags(self):
        method = BNOpt()
        assert method.adapts_bn_stats and method.does_backward

    def test_only_bn_affine_parameters_change(self, model, batch):
        method = BNOpt(lr=1e-2).prepare(model)
        affine_ids = {id(p) for p in bn_parameters(model)}
        before = {name: p.data.copy() for name, p in model.named_parameters()}
        method.forward(batch)
        for name, p in model.named_parameters():
            if id(p) in affine_ids:
                continue
            np.testing.assert_array_equal(p.data, before[name],
                                          err_msg=f"{name} changed")
        changed = any(not np.allclose(p.data, before[name])
                      for name, p in model.named_parameters()
                      if id(p) in affine_ids)
        assert changed

    def test_trainable_params_matches_bn_count(self, model):
        method = BNOpt().prepare(model)
        expected = sum(2 * layer.num_features for layer in bn_layers(model))
        assert method.trainable_params == expected

    def test_entropy_recorded(self, model, batch):
        method = BNOpt().prepare(model)
        method.forward(batch)
        assert method.last_entropy is not None
        assert 0.0 <= method.last_entropy <= np.log(10) + 1e-5

    def test_repeated_adaptation_reduces_entropy_on_fixed_batch(self, model, batch):
        method = BNOpt(lr=5e-3).prepare(model)
        entropies = []
        for _ in range(6):
            method.forward(batch)
            entropies.append(method.last_entropy)
        assert entropies[-1] < entropies[0]

    def test_steps_validation(self):
        with pytest.raises(ValueError):
            BNOpt(steps=0)

    def test_multi_step_runs(self, model, batch):
        method = BNOpt(steps=2).prepare(model)
        method.forward(batch)
        assert method.batches_adapted == 1

    def test_update_before_predict_gives_fresh_logits(self, model, batch):
        base = BNOpt(lr=1e-2, update_before_predict=False).prepare(model)
        logits_stale = base.forward(batch)
        base.reset()
        fresh = BNOpt(lr=1e-2, update_before_predict=True).prepare(model)
        logits_fresh = fresh.forward(batch)
        assert not np.allclose(logits_stale, logits_fresh)

    def test_reset_restores_affine(self, model, batch):
        method = BNOpt(lr=1e-2).prepare(model)
        before = [p.data.copy() for p in bn_parameters(model)]
        method.forward(batch)
        method.reset()
        for p, b in zip(bn_parameters(model), before):
            np.testing.assert_allclose(p.data, b)

    def test_forward_before_prepare_raises(self, batch):
        with pytest.raises(RuntimeError):
            BNOpt().forward(batch)

    def test_reset_before_prepare_raises(self):
        with pytest.raises(RuntimeError):
            BNOpt().reset()
