"""Extension adaptation methods: source-blend BN and entropy-gated TENT."""

import numpy as np
import pytest

from repro.adapt import (
    BNNorm,
    BNNormSourceBlend,
    BNOptSelective,
    EXTENSION_METHOD_NAMES,
    NoAdapt,
    bn_layers,
    bn_parameters,
    build_method,
)
from repro.models import build_model


@pytest.fixture
def model():
    return build_model("wrn40_2", "tiny")


@pytest.fixture
def batch(rng):
    return rng.standard_normal((16, 3, 16, 16)).astype(np.float32)


class TestFactory:
    def test_extensions_registered(self):
        for name in EXTENSION_METHOD_NAMES:
            assert build_method(name).name == name


class TestBNNormSourceBlend:
    def test_validation(self):
        with pytest.raises(ValueError):
            BNNormSourceBlend(source_count=-1)

    def test_zero_source_count_matches_bn_norm(self, model, batch):
        blend = BNNormSourceBlend(source_count=0).prepare(model)
        blend_logits = blend.forward(batch)
        blend.reset()
        norm = BNNorm(momentum=1.0).prepare(model)
        norm_logits = norm.forward(batch)
        norm.reset()
        # logits agree up to the biased (train-mode) vs unbiased (buffer)
        # variance convention compounding through the depth
        np.testing.assert_allclose(blend_logits, norm_logits, atol=0.05)
        np.testing.assert_array_equal(blend_logits.argmax(-1),
                                      norm_logits.argmax(-1))

    def test_huge_source_count_approaches_no_adapt(self, model, batch):
        blend = BNNormSourceBlend(source_count=10 ** 9).prepare(model)
        blend_logits = blend.forward(batch)
        blend.reset()
        frozen = NoAdapt().prepare(model)
        frozen_logits = frozen.forward(batch)
        np.testing.assert_allclose(blend_logits, frozen_logits, atol=1e-2)

    def test_buffers_blend_between_source_and_batch(self, model, batch):
        layers = bn_layers(model)
        source_means = [layer.running_mean.copy() for layer in layers]
        blend = BNNormSourceBlend(source_count=16).prepare(model)
        blend.forward(batch + 1.0)
        # the first BN layer's buffer moved toward the (shifted) batch
        # mean but not all the way
        moved = np.abs(layers[0].running_mean - source_means[0]).mean()
        assert moved > 1e-4
        blend.reset()
        np.testing.assert_allclose(layers[0].running_mean, source_means[0])

    def test_weights_untouched(self, model, batch):
        blend = BNNormSourceBlend().prepare(model)
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        blend.forward(batch)
        for name, p in model.named_parameters():
            np.testing.assert_array_equal(p.data, before[name])

    def test_no_backward_flag(self):
        assert not BNNormSourceBlend().does_backward


class TestBNOptSelective:
    def test_validation(self):
        with pytest.raises(ValueError):
            BNOptSelective(entropy_threshold=0.0)
        with pytest.raises(ValueError):
            BNOptSelective(entropy_threshold=1.5)

    def test_threshold_one_selects_everything(self, model, batch):
        method = BNOptSelective(entropy_threshold=1.0).prepare(model)
        method.forward(batch)
        assert method.last_selected_fraction == pytest.approx(1.0)

    def test_tiny_threshold_selects_nothing_and_freezes(self, model, batch):
        method = BNOptSelective(entropy_threshold=1e-6).prepare(model)
        affine_before = [p.data.copy() for p in bn_parameters(model)]
        method.forward(batch)
        assert method.last_selected_fraction == 0.0
        for p, before in zip(bn_parameters(model), affine_before):
            np.testing.assert_array_equal(p.data, before)

    def test_partial_selection_updates_affine(self, model, batch):
        method = BNOptSelective(lr=1e-2, entropy_threshold=0.95).prepare(model)
        affine_before = [p.data.copy() for p in bn_parameters(model)]
        method.forward(batch)
        if method.last_selected_fraction and method.last_selected_fraction > 0:
            changed = any(not np.allclose(p.data, before)
                          for p, before in zip(bn_parameters(model),
                                               affine_before))
            assert changed

    def test_only_bn_affine_trainable(self, model, batch):
        method = BNOptSelective().prepare(model)
        affine_ids = {id(p) for p in bn_parameters(model)}
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        method.forward(batch)
        for name, p in model.named_parameters():
            if id(p) not in affine_ids:
                np.testing.assert_array_equal(p.data, before[name])

    def test_forward_before_prepare_raises(self, batch):
        with pytest.raises(RuntimeError):
            BNOptSelective().forward(batch)

    def test_gated_loss_is_mean_over_selected(self, model, batch):
        """With threshold 1.0 the gated loss equals plain mean entropy."""
        from repro.adapt import BNOpt
        gated = BNOptSelective(lr=1e-3, entropy_threshold=1.0).prepare(model)
        gated.forward(batch)
        gated_entropy = gated.last_entropy
        gated.reset()
        plain = BNOpt(lr=1e-3).prepare(model)
        plain.forward(batch)
        assert gated_entropy == pytest.approx(plain.last_entropy, rel=1e-4)
