"""Integration: the paper's headline phenomenon on a real (micro) model.

Uses the session-scoped briefly-trained micro WRN from conftest: under a
distribution shift, BN-statistics adaptation must recover accuracy
relative to frozen inference.
"""

import numpy as np
import pytest

from repro.adapt import BNNorm, BNOpt, NoAdapt
from repro.data.corruptions import apply_corruption
from repro.data.stream import CorruptionStream
from repro.data.synthetic import make_synth_cifar
from repro.train.trainer import evaluate


def stream_error(method, model, stream, batch_size=50):
    method.prepare(model)
    correct = total = 0
    for images, labels in stream.batches(batch_size):
        logits = method.forward(images)
        correct += int((logits.argmax(axis=-1) == labels).sum())
        total += len(labels)
    method.reset()
    return 1.0 - correct / total


@pytest.fixture(scope="module")
def corrupted_setup(micro_trained_model):
    model, _train_data = micro_trained_model
    test = make_synth_cifar(300, size=16, seed=42)
    stream = CorruptionStream.from_dataset(test, "fog", severity=5, seed=0)
    return model, test, stream


class TestHeadlinePhenomenon:
    def test_model_learned_the_task(self, corrupted_setup):
        model, test, _ = corrupted_setup
        clean_error = evaluate(model, test.images, test.labels)
        assert clean_error < 0.35   # far better than the 0.9 chance level

    def test_corruption_degrades_frozen_model(self, corrupted_setup):
        model, test, stream = corrupted_setup
        clean_error = evaluate(model, test.images, test.labels)
        corrupted_error = stream_error(NoAdapt(), model, stream)
        assert corrupted_error > clean_error + 0.05

    def test_bn_norm_recovers_accuracy(self, corrupted_setup):
        model, _, stream = corrupted_setup
        no_adapt = stream_error(NoAdapt(), model, stream)
        bn_norm = stream_error(BNNorm(), model, stream)
        assert bn_norm < no_adapt - 0.03

    def test_bn_opt_at_least_matches_bn_norm_ballpark(self, corrupted_setup):
        model, _, stream = corrupted_setup
        bn_norm = stream_error(BNNorm(), model, stream)
        bn_opt = stream_error(BNOpt(lr=5e-3), model, stream)
        no_adapt = stream_error(NoAdapt(), model, stream)
        # On short streams TENT's advantage over BN-Norm is small and can
        # be slightly negative; it must still clearly beat No-Adapt.
        assert bn_opt < no_adapt - 0.03
        assert bn_opt < bn_norm + 0.05

    def test_adaptation_is_reset_between_streams(self, corrupted_setup):
        model, test, stream = corrupted_setup
        state_before = model.state_dict()
        stream_error(BNOpt(lr=5e-3), model, stream)
        state_after = model.state_dict()
        for key in state_before:
            np.testing.assert_allclose(state_before[key], state_after[key],
                                       atol=1e-6)


class TestBNStatShiftMechanism:
    def test_corruption_shifts_bn_input_statistics(self, corrupted_setup):
        """The mechanism behind the phenomenon: corrupted inputs have
        different first/second moments than the training data."""
        model, test, _ = corrupted_setup
        clean = test.images
        corrupted = np.stack([apply_corruption(im, "fog", 5, seed=i)
                              for i, im in enumerate(clean[:64])])
        assert abs(corrupted.mean() - clean[:64].mean()) > 0.05
