"""Adaptation monitoring: drift, entropy, churn signals."""

import numpy as np
import pytest

from repro.adapt import BNNorm, BNOpt, NoAdapt
from repro.adapt.diagnostics import AdaptationMonitor
from repro.models import build_model


@pytest.fixture
def model():
    return build_model("wrn40_2", "tiny")


@pytest.fixture
def batches(rng):
    return [rng.standard_normal((16, 3, 16, 16)).astype(np.float32) + 2.0
            for _ in range(3)]


class TestMonitor:
    def test_records_per_batch(self, model, batches):
        monitor = AdaptationMonitor(BNNorm()).prepare(model)
        for batch in batches:
            monitor.forward(batch)
        assert len(monitor.history) == 3
        assert [d.batch_index for d in monitor.history] == [0, 1, 2]

    def test_no_adapt_has_zero_drift(self, model, batches):
        monitor = AdaptationMonitor(NoAdapt()).prepare(model)
        monitor.forward(batches[0])
        assert monitor.history[0].stats_drift == pytest.approx(0.0)

    def test_bn_norm_drifts_under_shift(self, model, batches):
        monitor = AdaptationMonitor(BNNorm()).prepare(model)
        monitor.forward(batches[0])    # batches are shifted by +2
        assert monitor.history[0].stats_drift > 0.1

    def test_entropy_recorded_and_bounded(self, model, batches):
        monitor = AdaptationMonitor(BNOpt(lr=1e-3)).prepare(model)
        monitor.forward(batches[0])
        entropy = monitor.history[0].mean_entropy
        assert 0.0 <= entropy <= np.log(10) + 1e-6

    def test_churn_requires_probe(self, model, batches):
        monitor = AdaptationMonitor(BNNorm()).prepare(model)
        monitor.forward(batches[0])
        assert monitor.history[0].prediction_churn is None

    def test_churn_with_probe(self, model, batches, rng):
        probe = rng.standard_normal((32, 3, 16, 16)).astype(np.float32)
        monitor = AdaptationMonitor(BNOpt(lr=5e-2), probe=probe).prepare(model)
        monitor.forward(batches[0])
        assert monitor.history[0].prediction_churn is None  # first batch
        monitor.forward(batches[1])
        churn = monitor.history[1].prediction_churn
        assert churn is not None and 0.0 <= churn <= 1.0

    def test_reset_clears_history(self, model, batches):
        monitor = AdaptationMonitor(BNNorm()).prepare(model)
        monitor.forward(batches[0])
        monitor.reset()
        assert monitor.history == []

    def test_trajectories(self, model, batches):
        monitor = AdaptationMonitor(BNNorm()).prepare(model)
        for batch in batches:
            monitor.forward(batch)
        assert len(monitor.drift_trajectory()) == 3
        assert len(monitor.entropy_trajectory()) == 3
        assert monitor.max_churn() == 0.0   # no probe set

    def test_name(self):
        assert AdaptationMonitor(BNNorm()).name == "monitored(bn_norm)"

    def test_forward_returns_logits(self, model, batches):
        monitor = AdaptationMonitor(BNNorm()).prepare(model)
        logits = monitor.forward(batches[0])
        assert logits.shape == (16, 10)
