"""Fixtures for the scenario suite: a deterministic micro model + split.

The model is *untrained* (seeded init only): scenario tests pin
determinism and segmentation structure, not accuracy, so skipping
training keeps the whole suite fast while every golden value stays
bit-reproducible.
"""

from __future__ import annotations

import pytest

from repro.data.synthetic import make_synth_cifar
from repro.models.wide_resnet import wide_resnet40_2
from repro.nn import init as nn_init


def make_tiny_model(seed: int = 7):
    """A deterministic micro WRN (same seed -> bit-identical weights)."""
    nn_init.seed(seed)
    model = wide_resnet40_2(depth=10, widen_factor=1, base=4)
    model.eval()
    return model


@pytest.fixture
def tiny_model():
    return make_tiny_model()


@pytest.fixture(scope="session")
def tiny_dataset():
    return make_synth_cifar(256, size=16, seed=5)
