"""Scenario interop proofs: runner parallelism, io, CLI, serve resume.

Four contracts that cross layer boundaries:

- a scenario-driven native study is byte-identical serial vs. process-
  parallel (the schedule is a pure function of (spec, seed, index));
- scenario/segment record fields survive the JSON *and* CSV round
  trips, and pre-scenario documents still load;
- the CLI rejects malformed ``--scenario`` text with exit code 2 and
  runs a scenario stream end to end with exit code 0;
- a serve tenant fed scenario-shaped traffic, SIGKILLed mid-stream and
  resumed from its journal, matches an uninterrupted twin bit for bit.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import io as study_io
from repro.core.config import StudyConfig
from repro.core.records import MeasurementRecord, StudyResult
from repro.core.runner import run_native_study
from repro.data.synthetic import make_synth_cifar
from repro.scenarios import ScenarioStream
from repro.serve.manager import SessionManager, TenantSpec

from tests.test_scenarios.conftest import make_tiny_model
from tests.test_serve.conftest import assert_states_identical, strip_timing


def scenario_config(**overrides):
    base = dict(models=("wrn40_2",), methods=("no_adapt", "bn_norm"),
                batch_sizes=(16,), image_size=16, stream_samples=160,
                scenario="cyclic:dwell=2+over=fog|gaussian_noise@3")
    base.update(overrides)
    return StudyConfig(**base)


@pytest.fixture(scope="module")
def study_models():
    return {"wrn40_2": make_tiny_model()}


class TestNativeStudyParallelism:
    def test_serial_and_workers_byte_identical(self, study_models):
        serial = run_native_study(scenario_config(), models=study_models,
                                  per_corruption=True)
        parallel = run_native_study(scenario_config(workers=2),
                                    models=study_models, per_corruption=True)
        assert study_io.canonical_dumps(parallel, strip_timing=True) == \
            study_io.canonical_dumps(serial, strip_timing=True)

    def test_segment_records_emitted(self, study_models):
        result = run_native_study(scenario_config(methods=("bn_norm",)),
                                  models=study_models, per_corruption=True)
        segments = [r for r in result.records if r.segment >= 0]
        aggregate = [r for r in result.records if r.segment < 0]
        # 160 samples / 16 = 10 batches, dwell 2 -> 5 segments
        assert [r.segment for r in segments] == [0, 1, 2, 3, 4]
        assert [r.corruption for r in segments] == \
            ["fog", "gaussian_noise"] * 2 + ["fog"]
        assert len(aggregate) == 1
        assert all(r.scenario == "cyclic:dwell=2+over=fog|gaussian_noise@3"
                   for r in result.records)

    def test_scenario_in_resume_fingerprint(self, study_models, tmp_path):
        """Changing the scenario must invalidate a journaled run."""
        journal = tmp_path / "study.jsonl"
        run_native_study(scenario_config(methods=("bn_norm",),
                                         journal=str(journal)),
                         models=study_models)
        with pytest.raises(ValueError, match="fingerprint"):
            run_native_study(
                scenario_config(methods=("bn_norm",), journal=str(journal),
                                resume=True, scenario="markov:p=0.5"),
                models=study_models)


class TestRecordRoundTrip:
    def record(self):
        return MeasurementRecord(
            model="wrn40_2", method="bn_norm", batch_size=16, device="host",
            error_pct=42.5, forward_time_s=0.01, energy_j=float("nan"),
            corruption="fog", scenario="cyclic:dwell=2@3", segment=4,
            rollbacks=1, guarded=True)

    def test_json_round_trip(self):
        result = StudyResult([self.record()])
        back = study_io.loads(study_io.dumps(result)).records[0]
        assert back.scenario == "cyclic:dwell=2@3"
        assert back.segment == 4

    def test_csv_round_trip_types(self):
        result = StudyResult([self.record()])
        back = study_io.from_csv(study_io.to_csv(result)).records[0]
        assert back.scenario == "cyclic:dwell=2@3"
        assert back.segment == 4 and isinstance(back.segment, int)

    def test_pre_scenario_documents_still_load(self):
        payload = json.loads(study_io.dumps(StudyResult([self.record()])))
        for row in payload["records"]:
            row.pop("scenario")
            row.pop("segment")
        back = study_io.loads(json.dumps(payload)).records[0]
        assert back.scenario == ""
        assert back.segment == -1


def run_cli(*args):
    import repro
    src = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ, PYTHONPATH=src)
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, env=env)


class TestCli:
    @pytest.mark.parametrize("command", ["stream", "native"])
    @pytest.mark.parametrize("text", ["bogus:x=1", "markov:p="])
    def test_malformed_scenario_exits_2(self, command, text):
        proc = run_cli(command, "--scenario", text)
        assert proc.returncode == 2
        assert "bad --scenario" in proc.stderr

    def test_stream_scenario_end_to_end(self, tmp_path):
        out = tmp_path / "outcome.json"
        proc = run_cli("stream", "--scenario",
                       "cyclic:dwell=2+over=fog|gaussian_noise@3",
                       "--frames", "64", "--batch-size", "16",
                       "--method", "bn_norm", "--json", str(out))
        assert proc.returncode == 0, proc.stderr
        assert "forgetting" in proc.stdout
        records = json.loads(out.read_text())["records"]
        assert all(r["scenario"] ==
                   "cyclic:dwell=2+over=fog|gaussian_noise@3"
                   for r in records)
        segments = [r for r in records if r["segment"] >= 0]
        assert [r["corruption"] for r in segments] == \
            ["fog", "gaussian_noise"]     # 4 batches, dwell 2
        assert len(records) == len(segments) + 1   # plus the aggregate


class TestServeKillResume:
    """Scenario-shaped traffic through the serve journal."""

    TEXT = "markov:p=0.4+over=fog|gaussian_noise|contrast"

    def spec(self):
        return TenantSpec(tenant="cam0", model="wrn40_2", method="bn_opt",
                          batch_size=8, guard=True, queue_capacity=2,
                          image_size=16, seed=3)

    def chunks(self):
        dataset = make_synth_cifar(96, size=16, seed=5)
        stream = ScenarioStream.from_dataset(dataset, self.TEXT, seed=2)
        batches = list(stream.batches(8, 10))
        # poison one pre-kill and one post-kill batch so the guard state
        # that must survive the resume is non-trivial
        for index in (2, 7):
            images, labels = batches[index]
            images = images.copy()
            images[0] = np.nan
            batches[index] = (images, labels)
        return batches

    def feed(self, manager, chunks, faults_at=(2, 7)):
        for index, (images, labels) in enumerate(chunks):
            manager.ingest("cam0", images, labels,
                           faults=1 if index in faults_at else 0)

    def test_kill_and_resume_matches_uninterrupted_twin(self, tmp_path):
        chunks = self.chunks()

        twin = SessionManager()
        twin.open_tenant(self.spec())
        self.feed(twin, chunks)
        twin_state = twin.session("cam0").model.state_dict()
        twin_card = twin.scorecard("cam0")
        assert twin_card.rollbacks >= 1        # the faults actually bit

        journal = str(tmp_path / "serve.jsonl")
        first = SessionManager(journal=journal)
        first.open_tenant(self.spec())
        self.feed(first, chunks[:5])
        del first                              # SIGKILL stand-in

        second = SessionManager(journal=journal, resume=True)
        try:
            opened = second.open_tenant(self.spec())
            assert opened == {"resumed": True, "batches_done": 5,
                              "chunk": -1}
            self.feed(second, chunks[5:], faults_at={2})  # index 7 -> 2
            assert strip_timing(second.scorecard("cam0")) == \
                strip_timing(twin_card)
            assert_states_identical(
                twin_state, second.session("cam0").model.state_dict())
        finally:
            second.close()
        twin.close()
