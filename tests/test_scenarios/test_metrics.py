"""Segment cards and the recurrence forgetting metric (pure logic)."""

import math

import pytest

from repro.scenarios import (
    BatchStats,
    Segment,
    SegmentCard,
    recurrence_forgetting,
    segment_cards,
)


def stats(index, frames=8, correct=4, **kw):
    return BatchStats(index=index, frames=frames, correct=correct, **kw)


def card(ordinal, corruption="fog", severity=3, visit=0, frames=80,
         correct=40, **kw):
    base = dict(ordinal=ordinal, corruption=corruption, severity=severity,
                start=ordinal * 2, end=ordinal * 2 + 2, visit=visit,
                frames=frames, correct=correct, rollbacks=0,
                degraded_batches=0, fallback_frames=0, batches_adapted=2)
    base.update(kw)
    return SegmentCard(**base)


SEGMENTS = [Segment(0, "fog", 3, 0, 2, 0), Segment(1, "snow", 3, 2, 4, 0),
            Segment(2, "fog", 3, 4, 6, 1)]


class TestSegmentCards:
    def test_counters_sum_per_segment(self):
        batch_stats = [stats(0, correct=6, rollbacks=1),
                       stats(1, correct=2, fallback_frames=8),
                       stats(2), stats(3, degraded_batches=1),
                       stats(4, adapted=False), stats(5)]
        cards = segment_cards(SEGMENTS, batch_stats)
        assert [c.frames for c in cards] == [16, 16, 16]
        assert cards[0].correct == 8 and cards[0].rollbacks == 1
        assert cards[0].fallback_frames == 8
        assert cards[1].degraded_batches == 1
        assert cards[2].batches_adapted == 1   # batch 4 was frozen
        assert [c.visit for c in cards] == [0, 0, 1]

    def test_cards_mirror_segment_identity(self):
        cards = segment_cards(SEGMENTS, [stats(i) for i in range(6)])
        for segment, scard in zip(SEGMENTS, cards):
            assert (scard.ordinal, scard.corruption, scard.severity,
                    scard.start, scard.end, scard.visit) == \
                (segment.ordinal, segment.corruption, segment.severity,
                 segment.start, segment.end, segment.visit)
            assert scard.num_batches == segment.num_batches

    def test_truncated_stream_segments_cleanly(self):
        cards = segment_cards(SEGMENTS, [stats(i) for i in range(3)])
        assert [c.frames for c in cards] == [16, 8, 0]
        assert cards[2].error_pct == 0.0       # no frames -> defined 0

    def test_duplicate_batch_index_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            segment_cards(SEGMENTS, [stats(0), stats(0)])

    def test_stray_batch_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            segment_cards(SEGMENTS, [stats(0), stats(99)])

    def test_error_pct(self):
        assert card(0, frames=80, correct=60).error_pct == 25.0

    def test_dict_round_trip(self):
        original = card(1, visit=1, rollbacks=3)
        payload = original.to_dict()
        assert payload["error_pct"] == original.error_pct
        assert SegmentCard.from_dict(payload) == original


class TestForgetting:
    def test_no_recurrence_is_nan(self):
        assert math.isnan(recurrence_forgetting(
            [card(0), card(1, corruption="snow")]))

    def test_positive_when_revisits_are_worse(self):
        cards = [card(0, correct=60),               # first visit: 25 %
                 card(1, corruption="snow"),
                 card(2, visit=1, correct=40)]      # revisit: 50 %
        assert recurrence_forgetting(cards) == pytest.approx(25.0)

    def test_negative_when_revisits_keep_improving(self):
        cards = [card(0, correct=40),               # first visit: 50 %
                 card(1, corruption="snow"),
                 card(2, visit=1, correct=60)]      # revisit: 25 %
        assert recurrence_forgetting(cards) == pytest.approx(-25.0)

    def test_revisits_average_and_phases_average(self):
        cards = [
            card(0, correct=80),                            # fog: 0 %
            card(1, corruption="snow", correct=80),         # snow: 0 %
            card(2, visit=1, correct=40),                   # fog: 50 %
            card(3, corruption="snow", visit=1, correct=60),  # snow: 25 %
            card(4, visit=2, correct=60),                   # fog: 25 %
        ]
        # fog delta = mean(50, 25) - 0 = 37.5; snow delta = 25
        assert recurrence_forgetting(cards) == pytest.approx((37.5 + 25) / 2)

    def test_empty_segments_are_ignored(self):
        cards = [card(0, correct=60),
                 card(2, visit=1, frames=0, correct=0),   # truncated run
                 card(3, visit=2, correct=40)]
        assert recurrence_forgetting(cards) == pytest.approx(25.0)

    def test_revisit_without_first_encounter_is_skipped(self):
        """A truncated first visit (0 frames) leaves only revisits."""
        cards = [card(0, frames=0, correct=0),
                 card(1, visit=1, correct=40)]
        assert math.isnan(recurrence_forgetting(cards))

    def test_order_independent(self):
        cards = [card(0, correct=60), card(1, corruption="snow"),
                 card(2, visit=1, correct=40)]
        assert recurrence_forgetting(cards) == \
            recurrence_forgetting(list(reversed(cards)))
