"""run_scenario_stream end to end: freezing, forgetting, bit-identity.

Three acceptance proofs live here:

- the **forgetting pin**: a deterministic cyclic run's per-segment
  errors and recurrence forgetting are pinned to exact values;
- **budgeted freezing**: frozen batches really skip adaptation — the
  method's counter and the BN state both say so;
- **cross-backend bit-identity**: a markov stream with NaN faults,
  guarded, produces byte-equal scorecards and segment cards on the
  numpy and threaded engines.
"""

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.adapt import build_method
from repro.engine import create_backend, use_backend
from repro.robustness import run_guarded_stream
from repro.scenarios import ScenarioStream, run_scenario_stream

from tests.test_scenarios.conftest import make_tiny_model

CYCLIC = "cyclic:dwell=2+over=gaussian_noise|fog@3"


def strip_timing(card):
    return dataclasses.replace(card, mean_frame_latency_s=0.0,
                               wall_time_s=0.0)


def run(dataset, text, *, model=None, method="bn_norm", seed=0, **kw):
    stream = ScenarioStream.from_dataset(dataset, text, seed=seed)
    return run_scenario_stream(model if model is not None
                               else make_tiny_model(),
                               build_method(method), stream,
                               batch_size=16, **kw)


class TestForgettingPin:
    @pytest.fixture(scope="class")
    def outcome(self, tiny_dataset):
        return run(tiny_dataset, CYCLIC, num_batches=16, guard=False)

    def test_forgetting_pin(self, outcome):
        assert outcome.forgetting == pytest.approx(6.25)

    def test_segment_structure(self, outcome):
        assert [(c.corruption, c.visit) for c in outcome.segments] == \
            [("gaussian_noise", 0), ("fog", 0), ("gaussian_noise", 1),
             ("fog", 1), ("gaussian_noise", 2), ("fog", 2),
             ("gaussian_noise", 3), ("fog", 3)]

    def test_segment_error_pins(self, outcome):
        assert [c.error_pct for c in outcome.segments] == pytest.approx(
            [90.625, 78.125, 100.0, 90.625, 87.5, 84.375, 96.875, 84.375])

    def test_segments_sum_to_the_scorecard(self, outcome):
        card = outcome.scorecard
        assert sum(c.frames for c in outcome.segments) \
            == card.frames_processed == 256
        correct = sum(c.correct for c in outcome.segments)
        assert card.effective_error_pct == \
            pytest.approx(100.0 * (1 - correct / card.frames_processed))

    def test_rerun_is_bit_identical(self, tiny_dataset, outcome):
        again = run(tiny_dataset, CYCLIC, num_batches=16, guard=False)
        assert again.segments == outcome.segments
        assert strip_timing(again.scorecard) == strip_timing(outcome.scorecard)

    def test_scenario_label_stamped(self, outcome):
        assert outcome.scenario == CYCLIC
        assert outcome.scorecard.scenario == CYCLIC
        assert f"<{CYCLIC}>" in outcome.scorecard.describe()


class TestBudgetedFreezing:
    TEXT = "budgeted:budget=1+period=4+over=gaussian_noise@3"

    def test_frozen_batches_skip_adaptation(self, tiny_dataset):
        method = build_method("bn_norm")
        stream = ScenarioStream.from_dataset(tiny_dataset, self.TEXT)
        run_scenario_stream(make_tiny_model(), method, stream,
                            batch_size=16, num_batches=8, guard=False)
        assert method.batches_adapted == 2     # batches 0 and 4 only

    def test_frozen_batches_leave_bn_state_untouched(self, tiny_dataset):
        outcome = run(tiny_dataset, self.TEXT, num_batches=8, guard=False)
        assert sum(c.batches_adapted for c in outcome.segments) == 2

    def test_budgeted_gating_in_run_guarded_stream(self, tiny_dataset):
        """The robustness harness honors the same schedule."""
        method = build_method("bn_norm")
        stream = ScenarioStream.from_dataset(tiny_dataset, self.TEXT)
        card = run_guarded_stream(make_tiny_model(), method,
                                  stream.batches(16, 8), guard=False,
                                  scenario=stream.schedule)
        assert method.batches_adapted == 2
        # gaussian_noise is the kind's default palette, so the canonical
        # label omits it
        assert card.scenario == "budgeted:budget=1+period=4@3"


class TestCrossBackendBitIdentity:
    MARKOV = "markov:p=0.4+over=fog|gaussian_noise|contrast"

    def outcome_on(self, backend_name, dataset):
        backend = create_backend(backend_name, threads=2)
        try:
            with use_backend(backend):
                return run(dataset, self.MARKOV, method="bn_opt",
                           num_batches=12, guard=True, faults="nan@3",
                           seed=1)
        finally:
            backend.close()

    def test_guarded_markov_nan_stream_bit_identical(self, tiny_dataset):
        numpy_run = self.outcome_on("numpy", tiny_dataset)
        threaded_run = self.outcome_on("threaded", tiny_dataset)
        assert numpy_run.scorecard.rollbacks >= 1     # the fault bit
        assert numpy_run.segments == threaded_run.segments
        assert strip_timing(numpy_run.scorecard) == \
            strip_timing(threaded_run.scorecard)

    def test_fault_seed_rerolls_without_moving_the_schedule(self,
                                                           tiny_dataset):
        def faulted(fault_seed):
            stream = ScenarioStream.from_dataset(tiny_dataset, self.MARKOV,
                                                 seed=1)
            return run_scenario_stream(make_tiny_model(),
                                       build_method("bn_norm"), stream,
                                       batch_size=16, num_batches=12,
                                       faults="nan:0.3", seed=fault_seed)
        a, b = faulted(1), faulted(2)
        # same shift sequence ...
        assert [(c.corruption, c.start, c.end) for c in a.segments] == \
            [(c.corruption, c.start, c.end) for c in b.segments]
        # ... different fault draw
        assert a.scorecard.faults_injected != b.scorecard.faults_injected


class TestOutcomeSerialization:
    def test_to_dict_is_json_ready(self, tiny_dataset):
        outcome = run(tiny_dataset, CYCLIC, num_batches=4, guard=False)
        payload = json.loads(json.dumps(outcome.to_dict()))
        assert payload["scenario"] == CYCLIC
        assert len(payload["segments"]) == 2
        assert payload["segments"][0]["corruption"] == "gaussian_noise"
        assert payload["forgetting"] is None      # no recurrence in 4 batches
        assert math.isnan(outcome.forgetting)

    def test_forgetting_serialized_when_present(self, tiny_dataset):
        outcome = run(tiny_dataset, CYCLIC, num_batches=16, guard=False)
        assert outcome.to_dict()["forgetting"] == pytest.approx(6.25)

    def test_bad_num_batches_rejected(self, tiny_dataset):
        with pytest.raises(ValueError, match="num_batches"):
            run(tiny_dataset, CYCLIC, num_batches=0)
