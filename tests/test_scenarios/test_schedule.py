"""ScenarioSchedule: determinism, golden pins, per-kind semantics.

The golden schedules are this PR's headline determinism contract: one
markov and one cyclic realization are pinned batch-for-batch, so any
change to the RNG discipline (generator choice, draw order, child-seed
derivation) fails here before it silently invalidates recorded studies.
"""

import numpy as np
import pytest

from repro.scenarios import (
    ScenarioSchedule,
    Segment,
    as_schedule,
    parse_scenario_spec,
)
from repro.scenarios.schedule import CLEAN_SEVERITY, _ramp_rungs


def schedule(text, seed=0):
    return ScenarioSchedule(parse_scenario_spec(text), seed=seed)


#: pinned realization of markov:p=0.3 over a 3-corruption palette, seed 7
GOLDEN_MARKOV = [
    "gaussian_noise", "gaussian_noise", "gaussian_noise", "fog", "fog",
    "fog", "gaussian_noise", "gaussian_noise", "gaussian_noise",
    "gaussian_noise", "fog", "contrast", "contrast", "contrast",
    "contrast", "contrast",
]

#: pinned realization of cyclic:dwell=3 over fog|snow at severity 4
GOLDEN_CYCLIC = [("fog", 4)] * 3 + [("snow", 4)] * 3 \
    + [("fog", 4)] * 3 + [("snow", 4)] * 3


class TestGoldenSchedules:
    def test_markov_pin(self):
        plans = schedule("markov:p=0.3+over=contrast|fog|gaussian_noise",
                         seed=7).plan(16)
        assert [p.corruption for p in plans] == GOLDEN_MARKOV

    def test_cyclic_pin(self):
        plans = schedule("cyclic:dwell=3+over=fog|snow@4", seed=0).plan(12)
        assert [(p.corruption, p.severity) for p in plans] == GOLDEN_CYCLIC

    def test_cyclic_segments_pin(self):
        segments = schedule("cyclic:dwell=3+over=fog|snow@4").segments(12)
        assert segments == [
            Segment(0, "fog", 4, 0, 3, 0),
            Segment(1, "snow", 4, 3, 6, 0),
            Segment(2, "fog", 4, 6, 9, 1),
            Segment(3, "snow", 4, 9, 12, 1),
        ]

    def test_ramp_pin(self):
        plans = schedule("ramp:dwell=1+over=fog@4").plan(12)
        assert [p.severity for p in plans] == \
            [1, 2, 3, 4, 3, 2, 1, 2, 3, 4, 3, 2]


class TestDeterminism:
    MARKOV = "markov:p=0.3+over=contrast|fog|gaussian_noise"

    def test_same_seed_identical_plans(self):
        a = schedule(self.MARKOV, seed=3).plan(40)
        b = schedule(self.MARKOV, seed=3).plan(40)
        assert a == b

    def test_out_of_order_queries_match_serial(self):
        serial = schedule(self.MARKOV, seed=3).plan(40)
        shuffled = schedule(self.MARKOV, seed=3)
        order = np.random.default_rng(0).permutation(40)
        assert all(shuffled.plan_for(int(i)) == serial[int(i)]
                   for i in order)

    def test_different_seeds_diverge(self):
        a = [p.corruption for p in schedule(self.MARKOV, seed=0).plan(60)]
        b = [p.corruption for p in schedule(self.MARKOV, seed=1).plan(60)]
        assert a != b

    def test_cyclic_is_seed_free(self):
        """Deterministic kinds must not consume the seed at all."""
        a = schedule("cyclic:dwell=2", seed=0).plan(30)
        b = schedule("cyclic:dwell=2", seed=99).plan(30)
        assert a == b

    def test_imbalanced_weights_stable_under_query_order(self):
        late_first = schedule("imbalanced", seed=4)
        late = late_first.plan_for(25)
        serial = schedule("imbalanced", seed=4).plan(26)
        assert late == serial[25]

    def test_fingerprint_combines_spec_and_seed(self):
        spec = parse_scenario_spec("cyclic:dwell=2")
        a = ScenarioSchedule(spec, seed=1)
        assert a.fingerprint() == f"{spec.fingerprint()}-1"
        assert a.fingerprint() != ScenarioSchedule(spec, seed=2).fingerprint()


class TestKindSemantics:
    def test_markov_switches_to_a_different_corruption(self):
        plans = schedule("markov:p=0.9+over=fog|snow|contrast",
                         seed=11).plan(200)
        switches = sum(a.corruption != b.corruption
                       for a, b in zip(plans, plans[1:]))
        assert switches > 100              # p=0.9 switches most batches
        # and a "switch" draw never lands on the same state
        for a, b in zip(plans, plans[1:]):
            assert a.corruption in ("fog", "snow", "contrast")
            assert b.index == a.index + 1

    def test_markov_low_p_dwells(self):
        plans = schedule("markov:p=0.01+over=fog|snow", seed=0).plan(100)
        switches = sum(a.corruption != b.corruption
                       for a, b in zip(plans, plans[1:]))
        assert switches < 10

    def test_budgeted_adapt_flags(self):
        plans = schedule("budgeted:budget=2+period=4").plan(8)
        assert [p.adapt for p in plans] == \
            [True, True, False, False, True, True, False, False]

    def test_non_budgeted_kinds_always_adapt(self):
        for text in ("markov", "cyclic", "ramp", "imbalanced"):
            assert all(p.adapt for p in schedule(text).plan(10))

    def test_imbalanced_weights_are_a_distribution(self):
        plans = schedule("imbalanced:alpha=0.3", seed=2).plan(5)
        for plan in plans:
            assert plan.class_weights is not None
            assert len(plan.class_weights) == 10
            assert abs(sum(plan.class_weights) - 1.0) < 1e-9
        # per-batch draws differ (that's the point of the scenario)
        assert plans[0].class_weights != plans[1].class_weights

    def test_only_imbalanced_carries_class_weights(self):
        for text in ("markov", "cyclic", "ramp", "budgeted"):
            assert all(p.class_weights is None
                       for p in schedule(text).plan(6))

    def test_clean_phase_has_clean_severity(self):
        plans = schedule("cyclic:dwell=1+over=clean|fog@3").plan(4)
        assert [(p.corruption, p.severity) for p in plans] == \
            [("clean", CLEAN_SEVERITY), ("fog", 3),
             ("clean", CLEAN_SEVERITY), ("fog", 3)]

    @pytest.mark.parametrize("peak,rungs", [
        (1, (1,)),
        (2, (1, 2)),
        (3, (1, 2, 3, 2)),
        (5, (1, 2, 3, 4, 5, 4, 3, 2)),
    ])
    def test_ramp_rungs_shape(self, peak, rungs):
        assert _ramp_rungs(peak) == rungs

    def test_ramp_dwell_repeats_each_rung(self):
        plans = schedule("ramp:dwell=2+over=fog@3").plan(8)
        assert [p.severity for p in plans] == [1, 1, 2, 2, 3, 3, 2, 2]


class TestSegmentation:
    def test_segments_cover_the_prefix_exactly(self):
        segments = schedule("markov:p=0.4+over=fog|snow", seed=5).segments(50)
        assert segments[0].start == 0
        assert segments[-1].end == 50
        for a, b in zip(segments, segments[1:]):
            assert a.end == b.start
            assert b.ordinal == a.ordinal + 1

    def test_visits_count_phase_recurrences(self):
        segments = schedule("cyclic:dwell=2+over=fog|snow").segments(12)
        fog_visits = [s.visit for s in segments if s.corruption == "fog"]
        assert fog_visits == [0, 1, 2]

    def test_ramp_revisits_key_on_severity_too(self):
        segments = schedule("ramp:dwell=1+over=fog@3").segments(8)
        # severities 1,2,3,2 | 1,2,3,2 — the second (fog, 2) is visit 1
        by_phase = [(s.severity, s.visit) for s in segments]
        assert by_phase == [(1, 0), (2, 0), (3, 0), (2, 1),
                            (1, 1), (2, 2), (3, 1), (2, 3)]

    def test_single_phase_stream_is_one_segment(self):
        segments = schedule("imbalanced").segments(9)
        assert len(segments) == 1
        assert segments[0] == Segment(0, "gaussian_noise", 5, 0, 9, 0)


class TestApi:
    def test_negative_index_rejected(self):
        with pytest.raises(IndexError):
            schedule("cyclic").plan_for(-1)

    def test_label_is_compact_spec(self):
        assert schedule("cyclic:dwell=2@3").label == "cyclic:dwell=2@3"

    def test_as_schedule_accepts_string_spec_and_schedule(self):
        text = "cyclic:dwell=2"
        from_text = as_schedule(text, seed=3)
        from_spec = as_schedule(parse_scenario_spec(text), seed=3)
        consumed = as_schedule(text, seed=3)
        consumed.plan(10)                  # consume some stochastic state
        rebuilt = as_schedule(consumed, seed=3)
        assert from_text.plan(8) == from_spec.plan(8) == rebuilt.plan(8)

    def test_as_schedule_rebuilds_unconsumed_markov(self):
        """Coercing a consumed markov schedule must restart its RNG."""
        used = as_schedule("markov:p=0.5+over=fog|snow", seed=6)
        used.plan(30)
        fresh = as_schedule(used, seed=6)
        assert fresh.plan(30) == ScenarioSchedule(used.spec, seed=6).plan(30)
