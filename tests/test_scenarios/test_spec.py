"""ScenarioSpec: grammar, canonicalization, validation, fingerprints.

The property-based block is the PR's parsing contract: for *every*
constructible spec, ``parse(compact()) == spec`` and the fingerprint is
invariant under re-parsing; for malformed text the parser raises
``ValueError`` and nothing else.  The golden fingerprints below pin the
digest format across refactors — a change here invalidates every
recorded scenario stamp, so it must be deliberate.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.corruptions import CORRUPTION_NAMES
from repro.scenarios import (
    KIND_PARAMS,
    SCENARIO_KINDS,
    SWITCHING_KINDS,
    ScenarioSpec,
    parse_scenario_spec,
)


class TestGrammar:
    @pytest.mark.parametrize("kind", SCENARIO_KINDS)
    def test_bare_kind_parses_with_defaults(self, kind):
        spec = parse_scenario_spec(kind)
        assert spec.kind == kind
        assert spec.severity == 5
        assert dict(spec.params) == KIND_PARAMS[kind]

    def test_severity_suffix(self):
        assert parse_scenario_spec("markov@3").severity == 3

    def test_params_and_palette(self):
        spec = parse_scenario_spec("markov:p=0.25+over=fog|snow@2")
        assert spec.param("p") == 0.25
        assert spec.over == ("fog", "snow")
        assert spec.severity == 2

    def test_palette_defaults_by_kind(self):
        assert parse_scenario_spec("cyclic").over == tuple(CORRUPTION_NAMES)
        assert parse_scenario_spec("ramp").over == ("gaussian_noise",)

    def test_clean_allowed_in_switching_palette(self):
        spec = parse_scenario_spec("cyclic:over=clean|fog")
        assert spec.over == ("clean", "fog")

    def test_whitespace_tolerated(self):
        assert parse_scenario_spec(" markov ") == parse_scenario_spec("markov")

    def test_str_is_compact(self):
        spec = parse_scenario_spec("cyclic:dwell=2@3")
        assert str(spec) == spec.compact() == "cyclic:dwell=2@3"


class TestCanonicalization:
    def test_compact_omits_default_valued_params(self):
        # budget=2 is the kind default, so the canonical form drops it
        spec = parse_scenario_spec("budgeted:budget=2+period=4")
        assert spec.compact() == "budgeted:period=4"

    def test_compact_of_bare_default_is_just_the_kind(self):
        assert parse_scenario_spec("markov:p=0.1@5").compact() == "markov"

    def test_params_sorted_regardless_of_spelling_order(self):
        a = parse_scenario_spec("budgeted:period=4+budget=3")
        b = parse_scenario_spec("budgeted:budget=3+period=4")
        assert a == b
        assert a.compact() == b.compact()

    @pytest.mark.parametrize("text", [
        "markov", "markov:p=0.25", "cyclic:dwell=2@3",
        "ramp:dwell=1+over=fog@4", "imbalanced:alpha=0.5+over=snow",
        "budgeted:period=4", "cyclic:over=clean|fog@1",
    ])
    def test_round_trip_examples(self, text):
        spec = parse_scenario_spec(text)
        assert parse_scenario_spec(spec.compact()) == spec

    def test_constructor_accepts_param_dict(self):
        spec = ScenarioSpec("cyclic", params={"dwell": 2})
        assert spec == parse_scenario_spec("cyclic:dwell=2")


MALFORMED = [
    "",                              # empty
    "   ",                           # blank
    "bogus",                         # unknown kind
    "markov:p=",                     # missing value
    "markov:p",                      # not key=value
    "markov:=3",                     # missing key
    "markov:p=zero",                 # non-numeric value
    "markov:oops=1",                 # unknown parameter
    "markov:p=0",                    # p out of (0, 1]
    "markov:p=1.5",                  # p out of (0, 1]
    "markov:over=fog",               # markov needs >= 2 corruptions
    "markov:over=bogus|fog",         # unknown corruption
    "cyclic:over=fog|fog",           # repeated corruption
    "cyclic:over=",                  # empty palette
    "cyclic:dwell=0",                # dwell < 1
    "cyclic:dwell=1.5",              # non-integral dwell
    "ramp:over=clean",               # clean has no severity to ramp
    "ramp:over=fog|snow",            # single-corruption kind
    "ramp@7",                        # severity out of 1..5
    "markov@x",                      # non-integer severity
    "imbalanced:alpha=0",            # alpha must be positive
    "imbalanced:over=fog|snow",      # single-corruption kind
    "budgeted:budget=9+period=4",    # budget > period
    "budgeted:period=0",             # period < 1
]


class TestRejection:
    @pytest.mark.parametrize("text", MALFORMED)
    def test_malformed_text_raises_value_error(self, text):
        with pytest.raises(ValueError):
            parse_scenario_spec(text)

    def test_unknown_param_names_the_valid_ones(self):
        with pytest.raises(ValueError, match="valid"):
            parse_scenario_spec("cyclic:p=0.5")

    def test_param_lookup_raises_keyerror(self):
        with pytest.raises(KeyError):
            parse_scenario_spec("markov").param("dwell")


#: digest pins — changing the fingerprint payload format breaks every
#: recorded scenario stamp, so these fail loudly on purpose
GOLDEN_FINGERPRINTS = {
    "markov": "181df2d2a05dfe43",
    "cyclic:dwell=2": "cda57c5a8cf8a3cf",
    "budgeted:budget=2+period=4": "f71cbd1e5f6d4f63",
    "imbalanced:alpha=0.5+over=fog@2": "2593881c14a75b9f",
}


class TestFingerprint:
    @pytest.mark.parametrize("text,expected",
                             sorted(GOLDEN_FINGERPRINTS.items()))
    def test_golden_fingerprints(self, text, expected):
        assert parse_scenario_spec(text).fingerprint() == expected

    def test_spelling_variants_share_a_fingerprint(self):
        assert parse_scenario_spec("markov:p=0.1@5").fingerprint() \
            == parse_scenario_spec("markov").fingerprint()

    def test_different_specs_differ(self):
        prints = {parse_scenario_spec(text).fingerprint()
                  for text in ("markov", "markov@3", "markov:p=0.2",
                               "cyclic", "budgeted")}
        assert len(prints) == 5

    def test_fingerprint_stable_across_processes(self):
        """The digest must not depend on interpreter state (hash seeds,
        dict order): a fresh process computes the same hex."""
        import repro
        src = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED="99")
        code = ("from repro.scenarios import parse_scenario_spec;"
                "print(parse_scenario_spec('cyclic:dwell=2').fingerprint())")
        out = subprocess.run([sys.executable, "-c", code],
                             capture_output=True, text=True, check=True,
                             env=env)
        assert out.stdout.strip() == GOLDEN_FINGERPRINTS["cyclic:dwell=2"]


# -- property-based contract ---------------------------------------------

def specs():
    """Arbitrary *valid* ScenarioSpecs, built via the constructor."""
    def build(kind, palette, severity, draw_params):
        if kind in SWITCHING_KINDS:
            over = tuple(palette)
        else:
            over = (palette[0],) if palette[0] != "clean" else ("fog",)
        params = {}
        for key in KIND_PARAMS[kind]:
            if key == "p":
                params[key] = draw_params["p"]
            elif key == "alpha":
                params[key] = draw_params["alpha"]
            elif key == "dwell":
                params[key] = draw_params["dwell"]
            elif key == "period":
                params[key] = draw_params["period"]
            elif key == "budget":
                params[key] = min(draw_params["budget"],
                                  draw_params["period"])
        return ScenarioSpec(kind, over=over, severity=severity,
                            params=params)

    palettes = st.lists(
        st.sampled_from(CORRUPTION_NAMES + ["clean"]),
        min_size=2, max_size=5, unique=True)
    draws = st.fixed_dictionaries({
        "p": st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        "alpha": st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
        "dwell": st.integers(1, 12),
        "period": st.integers(1, 12),
        "budget": st.integers(1, 12),
    })
    return st.builds(build, st.sampled_from(SCENARIO_KINDS), palettes,
                     st.integers(1, 5), draws)


@given(specs())
@settings(max_examples=120, deadline=None)
def test_every_spec_round_trips_through_its_compact_form(spec):
    back = parse_scenario_spec(spec.compact())
    assert back == spec
    assert back.fingerprint() == spec.fingerprint()


@given(specs())
@settings(max_examples=60, deadline=None)
def test_every_spec_has_all_kind_params(spec):
    assert dict(spec.params).keys() == KIND_PARAMS[spec.kind].keys()


@given(st.text(max_size=30))
@settings(max_examples=120, deadline=None)
def test_parser_never_raises_anything_but_value_error(text):
    try:
        spec = parse_scenario_spec(text)
    except ValueError:
        return
    # accepted text must be canonical-stable
    assert parse_scenario_spec(spec.compact()) == spec
