"""ScenarioStream: byte-identity, on-demand corruption, label skew.

Every batch must be a pure function of (dataset, spec, seed, index,
batch_size) — the property the resume and parallel-worker proofs lean
on — so the core tests here compare *bytes*, not statistics.
"""

import numpy as np
import pytest

from repro.data.corruptions import corrupt_batch
from repro.data.stream import weighted_batch_indices
from repro.data.synthetic import make_synth_cifar
from repro.scenarios import ScenarioStream


def stream_for(dataset, text, seed=0):
    return ScenarioStream.from_dataset(dataset, text, seed=seed)


class TestByteIdentity:
    TEXT = "markov:p=0.4+over=fog|gaussian_noise|contrast"

    def test_recreated_stream_is_byte_identical(self, tiny_dataset):
        a = list(stream_for(tiny_dataset, self.TEXT, seed=2).batches(16, 10))
        b = list(stream_for(tiny_dataset, self.TEXT, seed=2).batches(16, 10))
        for (ia, la), (ib, lb) in zip(a, b):
            np.testing.assert_array_equal(ia, ib)
            np.testing.assert_array_equal(la, lb)

    def test_out_of_order_batch_at_matches_serial(self, tiny_dataset):
        serial = list(stream_for(tiny_dataset, self.TEXT,
                                 seed=2).batches(16, 10))
        fresh = stream_for(tiny_dataset, self.TEXT, seed=2)
        for index in (7, 0, 9, 3):
            images, labels = fresh.batch_at(index, 16)
            np.testing.assert_array_equal(images, serial[index][0])
            np.testing.assert_array_equal(labels, serial[index][1])

    def test_imbalanced_sampling_is_deterministic(self, tiny_dataset):
        a = list(stream_for(tiny_dataset, "imbalanced:alpha=0.2",
                            seed=4).batches(16, 6))
        b = list(stream_for(tiny_dataset, "imbalanced:alpha=0.2",
                            seed=4).batches(16, 6))
        for (ia, la), (ib, lb) in zip(a, b):
            np.testing.assert_array_equal(ia, ib)
            np.testing.assert_array_equal(la, lb)


class TestBatchContent:
    def test_batches_match_the_plan_corruption(self, tiny_dataset):
        stream = stream_for(tiny_dataset, "cyclic:dwell=2+over=fog|snow@3")
        plan = stream.plan_for(2)
        assert plan.corruption == "snow"
        images, _ = stream.batch_at(2, 8)
        rows = (2 * 8 + np.arange(8)) % len(tiny_dataset)
        seed = int(np.random.SeedSequence((0, 1, 2)).generate_state(1)[0])
        expected = corrupt_batch(tiny_dataset.images[rows], "snow",
                                 severity=3, seed=seed)
        np.testing.assert_array_equal(images, expected)

    def test_clean_batches_are_untouched_copies(self, tiny_dataset):
        stream = stream_for(tiny_dataset, "cyclic:dwell=1+over=clean|fog")
        images, labels = stream.batch_at(0, 8)
        np.testing.assert_array_equal(images, tiny_dataset.images[:8])
        images[:] = 0.0                    # mutating the batch ...
        labels[:] = 0
        assert tiny_dataset.images[:8].any()   # ... never hits the dataset

    def test_stream_wraps_around_the_dataset(self, tiny_dataset):
        stream = stream_for(tiny_dataset, "cyclic:over=clean|fog")
        total = len(tiny_dataset)
        wrapped, _ = stream.batch_at(total // 8, 8)   # first wrapped batch
        np.testing.assert_array_equal(wrapped, tiny_dataset.images[:8])

    def test_imbalanced_skews_the_label_histogram(self, tiny_dataset):
        stream = stream_for(tiny_dataset, "imbalanced:alpha=0.05", seed=1)
        counts = np.zeros(10)
        for _, labels in stream.batches(32, 8):
            counts += np.bincount(labels, minlength=10)
        top_share = counts.max() / counts.sum()
        assert top_share > 0.25            # far above the uniform 0.10


class TestApi:
    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            ScenarioStream.from_dataset(make_synth_cifar(0, size=16, seed=0),
                                        "cyclic")

    def test_bad_batch_size_rejected(self, tiny_dataset):
        with pytest.raises(ValueError, match="batch_size"):
            stream_for(tiny_dataset, "cyclic").batch_at(0, 0)

    def test_num_batches_is_one_epoch(self, tiny_dataset):
        stream = stream_for(tiny_dataset, "cyclic")
        assert stream.num_batches(16) == len(tiny_dataset) // 16
        assert len(list(stream.batches(16))) == stream.num_batches(16)

    def test_identity_properties(self, tiny_dataset):
        stream = stream_for(tiny_dataset, "cyclic:dwell=2", seed=9)
        assert stream.label == "cyclic:dwell=2"
        assert stream.seed == 9
        assert stream.spec.kind == "cyclic"
        assert len(stream) == len(tiny_dataset)


class TestWeightedBatchIndices:
    def test_zero_weight_classes_never_sampled(self):
        labels = np.repeat(np.arange(4), 10)
        weights = (1.0, 0.0, 1.0, 0.0) + (0.0,) * 6
        rows = weighted_batch_indices(labels, weights, 64,
                                      np.random.default_rng(0))
        assert set(labels[rows]) <= {0, 2}

    def test_absent_classes_are_renormalized_away(self):
        labels = np.zeros(10, dtype=np.int64)    # only class 0 present
        weights = (0.5,) + (0.5 / 9,) * 9
        rows = weighted_batch_indices(labels, weights, 16,
                                      np.random.default_rng(0))
        assert np.array_equal(labels[rows], np.zeros(16, dtype=np.int64))

    def test_no_matching_class_raises(self):
        labels = np.zeros(10, dtype=np.int64)
        weights = (0.0, 1.0) + (0.0,) * 8        # class 1 never occurs
        with pytest.raises(ValueError, match="no dataset sample"):
            weighted_batch_indices(labels, weights, 8,
                                   np.random.default_rng(0))
