"""Documentation invariants: the repo's contracts about itself."""

import importlib
import pkgutil
from pathlib import Path

import pytest

import repro

ROOT = Path(__file__).resolve().parents[1]


def _walk_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return names


class TestDocFiles:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md",
                                      "EXPERIMENTS.md",
                                      "docs/ARCHITECTURE.md", "docs/API.md"])
    def test_exists_and_substantial(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 1500, name

    def test_design_indexes_every_figure(self):
        text = (ROOT / "DESIGN.md").read_text()
        for figure in ["Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6",
                       "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11",
                       "Fig. 12", "Table I"]:
            assert figure in text, figure

    def test_experiments_records_known_deviations(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert "Known deviations" in text
        assert "| anchor |" in text   # the residual table is embedded

    def test_readme_mentions_all_examples(self):
        text = (ROOT / "README.md").read_text()
        for example in (ROOT / "examples").glob("*.py"):
            assert example.name in text, example.name

    def test_benchmarks_cover_every_paper_artifact(self):
        benches = {p.stem for p in (ROOT / "benchmarks").glob("test_*.py")}
        for artifact in ["test_fig02_accuracy", "test_fig03_ultra96_times",
                         "test_fig04_ultra96_breakdown",
                         "test_fig05_ultra96_tradeoffs",
                         "test_fig06_rpi_times", "test_fig07_rpi_breakdown",
                         "test_fig08_rpi_tradeoffs", "test_fig09_nx_times",
                         "test_fig10_nx_breakdown",
                         "test_fig11_nx_tradeoffs", "test_fig12_overall",
                         "test_table1_mobilenet"]:
            assert artifact in benches, artifact


class TestModuleDocstrings:
    @pytest.mark.parametrize("module_name", _walk_modules())
    def test_every_module_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20, module_name
