"""Daemon hardening tests: deadlines, drain, eviction, compaction.

Everything long-lived operation needs beyond the happy path: slow-loris
clients evicted by the io deadline, oversized and undecodable frames
refused without dropping the connection, the ``status`` health
document, graceful drain (checkpoint everyone, compact to one
checkpoint per tenant, resume bit-identically), idle-tenant eviction,
online journal compaction, and the client's typed call timeout.
"""

import socket
import struct
import threading
import time

import pytest

from repro.resilience.journal import scan_journal
from repro.serve import (
    ServeClient,
    ServeTimeoutError,
    SessionManager,
    TenantSpec,
)
from repro.serve import protocol
from repro.serve.daemon import ServeDaemon

from tests.test_serve.conftest import (
    assert_states_identical,
    make_batches,
    strip_timing,
)


def spec_for(tenant, **overrides):
    base = dict(tenant=tenant, model="wrn40_2", method="bn_opt",
                batch_size=8, guard=True, queue_capacity=2,
                image_size=16, seed=3)
    base.update(overrides)
    return TenantSpec(**base)


def start_daemon(manager, **kwargs):
    daemon = ServeDaemon(manager, host="127.0.0.1", port=0, **kwargs)
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    return daemon, thread


def connect(daemon, **kwargs):
    host, port = daemon.address
    return ServeClient.connect(host, port, timeout=5.0, **kwargs)


def raw_connect(daemon):
    return socket.create_connection(daemon.address, timeout=5.0)


def checkpoint_entries(journal_path):
    """Map tenant -> list of its ``tenant_checkpoint`` journal entries."""
    per_tenant = {}
    for entry in scan_journal(journal_path).entries:
        if entry.get("event") == "tenant_checkpoint":
            per_tenant.setdefault(entry["tenant"], []).append(entry)
    return per_tenant


class TestConnectionDeadlines:
    def test_slow_loris_client_is_evicted(self):
        daemon, thread = start_daemon(SessionManager(), io_timeout=0.2)
        try:
            with raw_connect(daemon) as sock:
                sock.sendall(b"\x00\x00")       # half a length prefix, then
                reply = protocol.recv_message(sock)   # ...nothing, forever
                assert reply["type"] == "error"
                assert "deadline" in reply["reason"]
                # the daemon closed the connection after the eviction
                assert protocol.recv_message(sock) is None
            assert daemon.evicted_connections == 1
        finally:
            daemon.shutdown()
            daemon.close()
            thread.join(timeout=5)

    def test_eviction_keeps_tenant_state(self):
        daemon, thread = start_daemon(SessionManager(), io_timeout=0.3)
        try:
            images, labels = make_batches(1, batch_size=8, seed=4)[0]
            with connect(daemon) as client:
                client.hello(spec_for("cam0"))
                client.send_frames(images, labels)
                time.sleep(0.8)                 # idle past the deadline
            # connection evicted; session survives in the manager
            with connect(daemon) as client:
                welcome = client.hello(spec_for("cam0"))
                assert welcome["batches_done"] == 1
                client.close_tenant()
        finally:
            daemon.shutdown()
            daemon.close()
            thread.join(timeout=5)


class TestMalformedFrames:
    def test_oversized_frame_refused_connection_survives(self):
        daemon, thread = start_daemon(SessionManager(),
                                      max_message_bytes=1024)
        try:
            with raw_connect(daemon) as sock:
                sock.sendall(struct.pack(">I", 2048) + b"x" * 2048)
                reply = protocol.recv_message(sock)
                assert reply["type"] == "error"
                assert "exceeds" in reply["reason"]
                # framing stayed intact: the next message is served
                protocol.send_message(sock, {"type": "status"})
                assert protocol.recv_message(sock)["type"] == "status"
        finally:
            daemon.shutdown()
            daemon.close()
            thread.join(timeout=5)

    def test_undecodable_payload_refused_connection_survives(self, daemon):
        with raw_connect(daemon) as sock:
            noise = b"\xff\xfe definitely not json \x00"
            sock.sendall(struct.pack(">I", len(noise)) + noise)
            reply = protocol.recv_message(sock)
            assert reply["type"] == "error"
            assert "protocol violation" in reply["reason"]
            protocol.send_message(sock, {"type": "status"})
            assert protocol.recv_message(sock)["type"] == "status"

    def test_one_byte_at_a_time_sender_is_served(self, daemon):
        with raw_connect(daemon) as sock:
            payload = b'{"type":"status"}'
            frame = struct.pack(">I", len(payload)) + payload
            for index in range(len(frame)):
                sock.sendall(frame[index:index + 1])
                time.sleep(0.002)
            assert protocol.recv_message(sock)["type"] == "status"


@pytest.fixture
def daemon():
    instance, thread = start_daemon(SessionManager())
    yield instance
    instance.shutdown()
    instance.close()
    thread.join(timeout=5)


class TestStatus:
    def test_status_reports_tenants_and_daemon_state(self, daemon):
        images, labels = make_batches(1, batch_size=8, seed=4)[0]
        with connect(daemon) as client:
            status = client.status()        # allowed before hello
            assert status["tenants"] == {}
            client.hello(spec_for("cam0"))
            client.send_frames(images, labels)
            status = client.status()
            cam0 = status["tenants"]["cam0"]
            assert cam0["batches_done"] == 1
            assert cam0["chunk"] == 0
            assert cam0["frames_processed"] == 8
            assert status["journal"] is None
            assert status["draining"] is False
            assert status["suspended"] == []
            assert status["evictions"] == 0
            assert list(daemon.address) == status["address"]
            client.close_tenant()

    def test_status_reports_journal_stats(self, tmp_path):
        journal = str(tmp_path / "serve.jsonl")
        daemon, thread = start_daemon(SessionManager(journal=journal,
                                                     compact_above=1 << 20))
        try:
            images, labels = make_batches(1, batch_size=8, seed=4)[0]
            with connect(daemon) as client:
                client.hello(spec_for("cam0"))
                client.send_frames(images, labels)
                stats = client.status()["journal"]
                assert stats["path"] == journal
                assert stats["size_bytes"] > 0
                assert stats["compact_above"] == 1 << 20
                client.close_tenant()
        finally:
            daemon.shutdown()
            daemon.close()
            thread.join(timeout=5)


class TestChunkDedupe:
    def test_duplicate_chunk_is_not_reapplied(self):
        manager = SessionManager()
        try:
            manager.open_tenant(spec_for("cam0"))
            images, labels = make_batches(1, batch_size=8)[0]
            first = manager.ingest("cam0", images, labels, faults=1,
                                   chunk=0)
            assert first["duplicate"] is False
            again = manager.ingest("cam0", images, labels, faults=1,
                                   chunk=0)
            assert again["duplicate"] is True
            assert again["accepted"] == 0
            assert again["batches_done"] == first["batches_done"]
            card = manager.scorecard("cam0")
            assert card.frames_processed == 8   # applied exactly once
            assert card.faults_injected == 1    # counted exactly once
        finally:
            manager.close()

    def test_unnumbered_chunks_never_dedupe(self):
        manager = SessionManager()
        try:
            manager.open_tenant(spec_for("cam0"))
            images, labels = make_batches(1, batch_size=8)[0]
            manager.ingest("cam0", images, labels)
            manager.ingest("cam0", images, labels)
            assert manager.scorecard("cam0").frames_processed == 16
        finally:
            manager.close()


class TestDrain:
    def _stream(self, client, tenant, chunks):
        client.hello(spec_for(tenant))
        for images, labels in chunks:
            client.send_frames(images, labels)

    def test_drain_compacts_to_one_checkpoint_per_tenant(self, tmp_path):
        """Acceptance pin, part two: a drained daemon's compacted
        journal holds exactly one ``tenant_checkpoint`` per tenant, and
        a resume re-admits every tenant bit-identically."""
        chunks = make_batches(4, batch_size=8, seed=11)
        journal = str(tmp_path / "serve.jsonl")
        daemon, thread = start_daemon(SessionManager(journal=journal))
        with connect(daemon) as client:
            self._stream(client, "cam0", chunks[:3])
        with connect(daemon) as client:
            self._stream(client, "cam1", chunks)
        with connect(daemon) as client:
            client.shutdown(drain=True)
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert daemon.drain_requested
        summary = daemon.drain(5.0)             # the serve()/CLI epilogue
        assert sorted(summary["checkpointed"]) == ["cam0", "cam1"]
        assert summary["skipped"] == []
        daemon.close(close_tenants=False)

        per_tenant = checkpoint_entries(journal)
        assert sorted(per_tenant) == ["cam0", "cam1"]
        assert [len(entries) for entries in per_tenant.values()] == [1, 1]

        # resume from the compacted journal: both tenants re-admitted,
        # and the streams continue bit-identically vs an uninterrupted twin
        twin = SessionManager()
        try:
            twin.open_tenant(spec_for("cam0"))
            for images, labels in chunks:
                twin.ingest("cam0", images, labels)
            twin_state = twin.session("cam0").model.state_dict()
            twin_card = twin.scorecard("cam0")
        finally:
            twin.close()
        resumed = SessionManager(journal=journal, resume=True)
        try:
            opened = resumed.open_tenant(spec_for("cam0"))
            assert opened["resumed"] is True
            assert opened["batches_done"] == 3
            for images, labels in chunks[3:]:
                resumed.ingest("cam0", images, labels)
            assert strip_timing(resumed.scorecard("cam0")) == \
                strip_timing(twin_card)
            assert_states_identical(
                twin_state, resumed.session("cam0").model.state_dict())
            assert resumed.open_tenant(spec_for("cam1"))["resumed"] is True
        finally:
            resumed.close()

    def test_draining_daemon_refuses_new_work(self, tmp_path):
        daemon, thread = start_daemon(
            SessionManager(journal=str(tmp_path / "serve.jsonl")))
        images, labels = make_batches(1, batch_size=8, seed=4)[0]
        with connect(daemon) as client:
            client.hello(spec_for("cam0"))
            client.send_frames(images, labels)
            daemon.draining = True              # drain began elsewhere
            from repro.serve import ServeError
            with pytest.raises(ServeError, match="draining"):
                client.send_frames(images, labels)
        with pytest.raises(Exception, match="draining"):
            with connect(daemon) as client:
                client.hello(spec_for("cam1"))
        daemon.shutdown()
        daemon.close(close_tenants=False)
        thread.join(timeout=5)

    def test_non_drain_shutdown_skips_the_drain(self):
        daemon, thread = start_daemon(SessionManager())
        with connect(daemon) as client:
            client.shutdown(drain=False)
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert daemon.drain_requested is False
        daemon.close()


class TestIdleEviction:
    def test_idle_tenant_evicted_then_resumed_bit_identically(self, tmp_path):
        chunks = make_batches(2, batch_size=8, seed=11)
        journal = str(tmp_path / "serve.jsonl")
        daemon, thread = start_daemon(SessionManager(journal=journal),
                                      idle_evict_s=0.3)
        try:
            with connect(daemon) as client:
                client.hello(spec_for("cam0"))
                client.send_frames(*chunks[0])
                # service_actions runs between accepts (~every 0.5 s);
                # wait for the eviction to land
                deadline = time.monotonic() + 5.0
                while daemon.manager.evictions == 0:
                    assert time.monotonic() < deadline, "never evicted"
                    time.sleep(0.05)
                status = client.status()
                assert status["suspended"] == ["cam0"]
                assert status["tenants"] == {}
                # re-hello resumes from the eviction checkpoint
                welcome = client.hello(spec_for("cam0"))
                assert welcome["resumed"] is True
                assert welcome["batches_done"] == 1
                client.send_frames(*chunks[1])
                card = client.scorecard()
                state = daemon.manager.session("cam0").model.state_dict()
                client.close_tenant()
        finally:
            daemon.shutdown()
            daemon.close()
            thread.join(timeout=5)
        evicts = [e for e in scan_journal(journal).entries
                  if e.get("event") == "tenant_evict"]
        assert len(evicts) == 1

        twin = SessionManager()
        try:
            twin.open_tenant(spec_for("cam0"))
            for images, labels in chunks:
                twin.ingest("cam0", images, labels)
            assert strip_timing(twin.scorecard("cam0")) == strip_timing(card)
            assert_states_identical(twin.session("cam0").model.state_dict(),
                                    state)
        finally:
            twin.close()

    def test_mid_batch_tenant_is_never_evicted(self):
        manager = SessionManager()
        try:
            manager.open_tenant(spec_for("cam0"))
            entry = manager._tenants["cam0"]
            entry.last_active -= 1000.0         # ancient, but...
            with entry.lock:                    # ...mid-batch right now
                assert manager.evict_idle(0.1) == []
            assert manager.evict_idle(0.1) == ["cam0"]
        finally:
            manager.close()


class TestOnlineCompaction:
    def test_compact_above_keeps_journal_bounded(self, tmp_path):
        journal = str(tmp_path / "serve.jsonl")
        manager = SessionManager(journal=journal, compact_above=16 * 1024)
        try:
            manager.open_tenant(spec_for("cam0"))
            for images, labels in make_batches(8, batch_size=8, seed=11):
                manager.ingest("cam0", images, labels)
            assert manager.compactions >= 1
            per_tenant = checkpoint_entries(journal)
            assert len(per_tenant["cam0"]) == 1     # only the latest
        finally:
            manager.close()

    def test_compaction_is_invisible_to_resume(self, tmp_path):
        chunks = make_batches(6, batch_size=8, seed=11)
        plain = str(tmp_path / "plain.jsonl")
        compacted = str(tmp_path / "compacted.jsonl")
        for path, compact_above in ((plain, 0), (compacted, 8 * 1024)):
            manager = SessionManager(journal=path,
                                     compact_above=compact_above)
            manager.open_tenant(spec_for("cam0"))
            for images, labels in chunks[:4]:
                manager.ingest("cam0", images, labels)
            del manager                         # SIGKILL: no close
        states = {}
        for path in (plain, compacted):
            resumed = SessionManager(journal=path, resume=True)
            try:
                opened = resumed.open_tenant(spec_for("cam0"))
                assert opened["batches_done"] == 4
                for images, labels in chunks[4:]:
                    resumed.ingest("cam0", images, labels)
                states[path] = \
                    resumed.session("cam0").model.state_dict()
            finally:
                resumed.close()
        assert_states_identical(states[plain], states[compacted])


class TestClientTimeout:
    def test_stalled_daemon_raises_typed_timeout(self):
        mute = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        mute.bind(("127.0.0.1", 0))
        mute.listen()
        accepted = []

        def sink():
            try:
                conn, _ = mute.accept()
                accepted.append(conn)
                while conn.recv(1 << 16):
                    pass                        # read forever, reply never
            except OSError:
                pass

        thread = threading.Thread(target=sink, daemon=True)
        thread.start()
        host, port = mute.getsockname()
        try:
            client = ServeClient.connect(host, port, timeout=5.0,
                                         call_timeout=0.3)
            with pytest.raises(ServeTimeoutError, match="0.3"):
                client.status()
            client.close()
        finally:
            mute.close()
            for conn in accepted:
                conn.close()
            thread.join(timeout=5)

    def test_per_call_timeout_overrides_default(self):
        mute = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        mute.bind(("127.0.0.1", 0))
        mute.listen()
        host, port = mute.getsockname()
        try:
            client = ServeClient.connect(host, port, timeout=5.0,
                                         call_timeout=60.0)
            start = time.monotonic()
            with pytest.raises(ServeTimeoutError):
                client.status(timeout=0.2)
            assert time.monotonic() - start < 5.0
            client.close()
        finally:
            mute.close()
