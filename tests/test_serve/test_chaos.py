"""Chaos-proxy tests: seeded network faults between client and daemon.

The acceptance pin of the hardening work lives here: a tenant stream
run through the chaos proxy with injected disconnects, truncations and
garbage — client retries on — must finish with a model state and
scorecard bit-identical to the same stream run fault-free.  That only
holds if the whole stack cooperates: the proxy's fault semantics
(applied vs not-applied), the daemon's chunk dedupe, and the client's
reconnect/re-hello/re-send loop.
"""

import struct
import threading

import pytest

from repro.robustness.faults import parse_fault_specs
from repro.serve import (
    ChaosProxy,
    NETWORK_FAULT_NAMES,
    ServeClient,
    SessionManager,
    TenantSpec,
    parse_network_fault_specs,
)
from repro.serve.daemon import ServeDaemon

from tests.test_serve.conftest import (
    assert_states_identical,
    make_batches,
    poison,
    strip_timing,
)


def spec_for(tenant, **overrides):
    base = dict(tenant=tenant, model="wrn40_2", method="bn_opt",
                batch_size=8, guard=True, queue_capacity=2,
                image_size=16, seed=3)
    base.update(overrides)
    return TenantSpec(**base)


def start_daemon(manager, **kwargs):
    daemon = ServeDaemon(manager, host="127.0.0.1", port=0, **kwargs)
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    return daemon, thread


@pytest.fixture
def daemon():
    instance, thread = start_daemon(SessionManager())
    yield instance
    instance.shutdown()
    instance.close()
    thread.join(timeout=5)


def connect_via(proxy, **kwargs):
    host, port = proxy.address
    return ServeClient.connect(host, port, timeout=5.0, **kwargs)


class TestGrammar:
    def test_network_names_parse_in_shared_grammar(self):
        specs = parse_fault_specs("disconnect@2,truncate:0.5")
        assert [s.fault for s in specs] == ["disconnect", "truncate"]

    def test_network_parser_rejects_batch_faults(self):
        with pytest.raises(ValueError, match="not a network fault"):
            parse_network_fault_specs("nan:0.2")

    def test_network_parser_accepts_full_taxonomy(self):
        text = ",".join(f"{name}@1" for name in NETWORK_FAULT_NAMES)
        specs = parse_network_fault_specs(text)
        assert tuple(s.fault for s in specs) == NETWORK_FAULT_NAMES

    def test_proxy_refuses_batch_fault_specs(self):
        with pytest.raises(ValueError, match="not a network fault"):
            ChaosProxy("127.0.0.1", 1, parse_fault_specs("nan@1"))


class TestDeterminism:
    def test_garbage_bytes_are_seeded_and_oversized(self):
        a = ChaosProxy("127.0.0.1", 1, (), seed=7)
        b = ChaosProxy("127.0.0.1", 1, (), seed=7)
        c = ChaosProxy("127.0.0.1", 1, (), seed=8)
        for index in range(5):
            noise = a._garbage(index)
            assert noise == b._garbage(index)
            # declared length always over the 64 MB cap: the daemon
            # refuses the frame instead of waiting for gigabytes
            (length,) = struct.unpack(">I", noise[:4])
            assert length >= 1 << 31
        assert a._garbage(0) != c._garbage(0)


class TestRelay:
    def test_fault_free_proxy_is_transparent(self, daemon):
        chunks = make_batches(3, batch_size=8, seed=5)
        with ChaosProxy(*daemon.address, ()) as proxy:
            with connect_via(proxy) as client:
                client.hello(spec_for("cam0"))
                for images, labels in chunks:
                    ack = client.send_frames(images, labels)
                    assert ack["duplicate"] is False
                card = client.close_tenant()
        assert card.frames_processed == 24
        assert proxy.events == []

    def test_split_and_delay_are_survivable_without_retries(self, daemon):
        # split dribbles bytes, delay stalls: annoying, never fatal —
        # the recv loop and a generous io_timeout must absorb both
        specs = parse_network_fault_specs("split@1,delay@2")
        chunks = make_batches(3, batch_size=8, seed=5)
        with ChaosProxy(*daemon.address, specs, delay_s=0.05) as proxy:
            with connect_via(proxy) as client:
                client.hello(spec_for("cam0"))
                for images, labels in chunks:
                    client.send_frames(images, labels)
                card = client.close_tenant()
        assert card.frames_processed == 24
        assert [e.fault for e in proxy.events] == ["split", "delay"]

    def test_disconnect_after_apply_is_acked_as_duplicate(self, daemon):
        # message 0 is the hello; message 1 the first frames chunk: the
        # proxy forwards it whole, then severs — the daemon *applied*
        # it, the reply is lost, and the retried send must dedupe
        specs = parse_network_fault_specs("disconnect@1")
        images, labels = make_batches(1, batch_size=8, seed=5)[0]
        with ChaosProxy(*daemon.address, specs) as proxy:
            with connect_via(proxy, retries=4) as client:
                client.hello(spec_for("cam0"))
                ack = client.send_frames(images, labels)
                assert ack["duplicate"] is True
                assert ack["batches_done"] == 1
                assert client.scorecard().frames_processed == 8
                client.close_tenant()
        assert [e.fault for e in proxy.events] == ["disconnect"]

    def test_truncate_is_not_applied_and_retry_applies_once(self, daemon):
        # a truncated frame EOFs mid-message server-side: never applied,
        # so the retried send is a *fresh* apply, not a duplicate
        specs = parse_network_fault_specs("truncate@1")
        images, labels = make_batches(1, batch_size=8, seed=5)[0]
        with ChaosProxy(*daemon.address, specs) as proxy:
            with connect_via(proxy, retries=4) as client:
                client.hello(spec_for("cam0"))
                ack = client.send_frames(images, labels)
                assert ack["duplicate"] is False
                assert client.scorecard().frames_processed == 8
                client.close_tenant()
        assert [e.fault for e in proxy.events] == ["truncate"]

    def test_fault_without_retries_surfaces_typed_error(self, daemon):
        from repro.serve import ServeDisconnectedError
        specs = parse_network_fault_specs("truncate@1")
        images, labels = make_batches(1, batch_size=8, seed=5)[0]
        with ChaosProxy(*daemon.address, specs) as proxy:
            with connect_via(proxy) as client:
                client.hello(spec_for("cam0"))
                with pytest.raises(ServeDisconnectedError):
                    client.send_frames(images, labels)


class TestBitIdentityUnderChaos:
    def test_chaos_stream_matches_fault_free_twin(self, daemon):
        """THE acceptance pin: chaos changes nothing but the weather.

        Message indices through the proxy: hello=0, then each frames
        chunk / retry hello / re-send consumes the next index, so
        ``disconnect@2,truncate@4,garbage@6`` chains three recoveries
        onto the second chunk — an applied-but-unacked send, then two
        never-applied sends — before the duplicate ack settles it.
        """
        chunks = poison(make_batches(6, batch_size=8, seed=11), {3})

        twin = SessionManager()
        try:
            twin.open_tenant(spec_for("cam0"))
            for index, (images, labels) in enumerate(chunks):
                twin.ingest("cam0", images, labels,
                            faults=1 if index == 3 else 0)
            twin_state = twin.session("cam0").model.state_dict()
            twin_card = twin.scorecard("cam0")
            assert twin_card.rollbacks >= 1       # the fault actually bit
        finally:
            twin.close()

        specs = parse_network_fault_specs("disconnect@2,truncate@4,garbage@6")
        with ChaosProxy(*daemon.address, specs, seed=7) as proxy:
            with connect_via(proxy, retries=6, backoff_base=0.01) as client:
                client.hello(spec_for("cam0"))
                for index, (images, labels) in enumerate(chunks):
                    client.send_frames(images, labels,
                                       faults=1 if index == 3 else 0)
                card = client.scorecard()
                state = daemon.manager.session("cam0").model.state_dict()
                client.close_tenant()
        assert [e.fault for e in proxy.events] == \
            ["disconnect", "truncate", "garbage"]
        assert strip_timing(card) == strip_timing(twin_card)
        assert_states_identical(twin_state, state)
