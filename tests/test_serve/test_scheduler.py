"""BatchScheduler: per-key FIFO, non-overlap, fairness, and the
manager-level bit-identity contract under cross-tenant scheduling."""

import threading
import time

import pytest

from repro.serve.manager import SessionManager, TenantSpec
from repro.serve.scheduler import (
    BatchScheduler,
    BatchTicket,
    SchedulerClosedError,
)

from tests.test_serve.conftest import (
    assert_states_identical,
    make_batches,
    strip_timing,
)


@pytest.fixture
def scheduler():
    instance = BatchScheduler(workers=2)
    yield instance
    instance.close()


class TestOrdering:
    def test_per_key_fifo(self, scheduler):
        ran = []
        tickets = [scheduler.submit("t", lambda i=i: ran.append(i))
                   for i in range(20)]
        assert scheduler.wait_idle(timeout=10.0)
        assert all(ticket.done() for ticket in tickets)
        assert ran == list(range(20))

    def test_per_key_non_overlap(self, scheduler):
        """A key's session is never entered concurrently, even with
        more workers than keys."""
        active = []
        overlaps = []
        lock = threading.Lock()

        def item():
            with lock:
                active.append(None)
                if len(active) > 1:
                    overlaps.append(None)
            time.sleep(0.002)
            with lock:
                active.pop()

        for _ in range(10):
            scheduler.submit("t", item)
        assert scheduler.wait_idle(timeout=10.0)
        assert overlaps == []

    def test_keys_run_concurrently(self, scheduler):
        """Different keys do overlap — that is the point of the pool."""
        barrier = threading.Barrier(2, timeout=5.0)
        scheduler.submit("a", barrier.wait)
        scheduler.submit("b", barrier.wait)
        # the barrier only releases if both run at once; a serial
        # scheduler would trip its timeout and the error would surface
        for ticket in (scheduler.submit("a", lambda: None),):
            assert ticket.wait(timeout=10.0)
        assert scheduler.wait_idle(timeout=10.0)

    def test_hot_tenant_cannot_starve_a_cold_one(self):
        """Tail re-entry: the cold key's single batch dispatches second,
        not after the hot key's whole backlog."""
        scheduler = BatchScheduler(workers=1, record_dispatches=True,
                                   start=False)
        try:
            for _ in range(5):
                scheduler.submit("hot", lambda: None)
            scheduler.submit("cold", lambda: None)
            scheduler.start()
            assert scheduler.wait_idle(timeout=10.0)
            assert scheduler.dispatch_log[0] == "hot"
            assert scheduler.dispatch_log[1] == "cold"
            assert scheduler.dispatch_log[2:] == ["hot"] * 4
        finally:
            scheduler.close()


class TestTickets:
    def test_wait_reraises_the_batch_exception(self, scheduler):
        def boom():
            raise RuntimeError("batch exploded")

        ticket = scheduler.submit("t", boom)
        with pytest.raises(RuntimeError, match="batch exploded"):
            ticket.wait(timeout=10.0)
        # a failed batch does not wedge the key: later items still run
        assert scheduler.submit("t", lambda: None).wait(timeout=10.0)

    def test_wait_timeout_returns_false(self):
        ticket = BatchTicket()
        assert ticket.wait(timeout=0.01) is False
        assert not ticket.done()

    def test_wait_idle_timeout_returns_false(self):
        scheduler = BatchScheduler(workers=1, start=False)
        try:
            scheduler.submit("t", lambda: None)
            assert scheduler.wait_idle(timeout=0.05) is False
            assert scheduler.depth() == 1
        finally:
            scheduler.close()


class TestLifecycle:
    def test_close_fails_stranded_tickets(self):
        scheduler = BatchScheduler(workers=1, start=False)
        tickets = [scheduler.submit("t", lambda: None) for _ in range(3)]
        scheduler.close()
        for ticket in tickets:
            with pytest.raises(SchedulerClosedError):
                ticket.wait(timeout=10.0)

    def test_submit_after_close_refused(self):
        scheduler = BatchScheduler(workers=1)
        scheduler.close()
        with pytest.raises(SchedulerClosedError):
            scheduler.submit("t", lambda: None)

    def test_close_is_idempotent(self, scheduler):
        scheduler.close()
        scheduler.close()

    def test_stats_counters(self, scheduler):
        for _ in range(4):
            scheduler.submit("t", lambda: None)
        assert scheduler.wait_idle(timeout=10.0)
        stats = scheduler.stats()
        assert stats == {"workers": 2, "queued": 0, "in_flight": 0,
                         "dispatched": 4}

    def test_wait_key_tracks_one_tenant(self, scheduler):
        release = threading.Event()
        scheduler.submit("slow", lambda: release.wait(5.0))
        scheduler.submit("fast", lambda: None)
        assert scheduler.wait_key("fast", timeout=10.0)
        assert not scheduler.wait_key("slow", timeout=0.05)
        release.set()
        assert scheduler.wait_key("slow", timeout=10.0)


def spec_for(tenant, **overrides):
    base = dict(tenant=tenant, model="wrn40_2", method="bn_norm",
                batch_size=8, guard=False, queue_capacity=2,
                image_size=16, seed=3)
    base.update(overrides)
    return TenantSpec(**base)


class TestManagerScheduling:
    """The scheduler under the real manager: bit-identity and
    admission accounting."""

    def test_concurrent_tenants_match_serial_twins(self):
        """Two tenants fed concurrently through the shared pool end in
        exactly the state of serially fed twins — scheduling changes
        wall-clock interleaving, never results."""
        streams = {"cam0": make_batches(6, batch_size=8, seed=11),
                   "cam1": make_batches(6, batch_size=8, seed=22)}

        serial = SessionManager(workers=2)
        try:
            expected = {}
            for tenant, batches in streams.items():
                serial.open_tenant(spec_for(tenant))
                for images, labels in batches:
                    serial.ingest(tenant, images, labels)
                expected[tenant] = (
                    strip_timing(serial.scorecard(tenant)),
                    serial.session(tenant).model.state_dict())

            concurrent = SessionManager(workers=2)
            try:
                for tenant in streams:
                    concurrent.open_tenant(spec_for(tenant))

                def feed(tenant):
                    for images, labels in streams[tenant]:
                        concurrent.ingest(tenant, images, labels)

                threads = [threading.Thread(target=feed, args=(tenant,))
                           for tenant in streams]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()

                for tenant in streams:
                    card, state = expected[tenant]
                    assert strip_timing(
                        concurrent.scorecard(tenant)) == card
                    assert_states_identical(
                        state,
                        concurrent.session(tenant).model.state_dict())
            finally:
                concurrent.close()
        finally:
            serial.close()

    def test_admission_counts_scheduled_frames_as_backlog(self):
        """Frames handed to the scheduler but not yet run still occupy
        admission capacity — a slow pool cannot be overfilled."""
        manager = SessionManager(workers=1)
        try:
            manager.open_tenant(spec_for("cam0", queue_capacity=1))
            # capacity = (1 + 1) * 8 = 16; pretend 8 frames are already
            # queued in the scheduler and not yet processed
            manager._tenants["cam0"].queued_frames = 8
            images, labels = make_batches(1, batch_size=20, seed=5)[0]
            ack = manager.ingest("cam0", images, labels)
            assert ack["accepted"] == 8 and ack["dropped"] == 12
            manager._tenants["cam0"].queued_frames = 0
        finally:
            manager.close()

    def test_status_reports_scheduler_stats(self):
        manager = SessionManager(workers=3)
        try:
            manager.open_tenant(spec_for("cam0"))
            images, labels = make_batches(1, batch_size=8)[0]
            manager.ingest("cam0", images, labels)
            stats = manager.status()["scheduler"]
            assert stats["workers"] == 3
            assert stats["dispatched"] >= 1
            assert stats["queued"] == 0 and stats["in_flight"] == 0
        finally:
            manager.close()
