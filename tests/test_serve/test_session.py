"""AdaptationSession: driver equivalence, teardown, checkpoint/resume.

The refactor contract: the session must reproduce the drivers' old
inline loops bit-for-bit, restore the source state on mid-stream
exceptions (new, the context-manager guarantee), and checkpoint/resume
a stream bit-identically — including a guarded BN-Opt ladder that has
degraded mid-stream.
"""

import time

import numpy as np
import pytest

from repro.adapt import build_method
from repro.robustness.guard import GuardedAdaptation
from repro.serve.session import AdaptationSession

from tests.test_serve.conftest import (
    assert_states_identical,
    make_batches,
    make_model,
    poison,
    strip_timing,
)


class TestDriverEquivalence:
    """The session's loop == the pre-refactor inline loop, bit for bit."""

    def test_matches_manual_loop(self, batches):
        # manual loop, exactly as core.runner/_robustness.harness wrote it
        model_a = make_model()
        method_a = GuardedAdaptation(build_method("bn_opt", lr=5e-3))
        method_a.prepare(model_a)
        correct = total = 0
        for images, labels in poison(batches, {2}):
            start = time.perf_counter()
            logits = method_a.forward(images)
            time.perf_counter() - start
            predictions = np.nan_to_num(logits).argmax(axis=-1)
            correct += int((predictions == labels).sum())
            total += len(labels)

        model_b = make_model()
        session = AdaptationSession(
            model_b, GuardedAdaptation(build_method("bn_opt", lr=5e-3)))
        with session:
            for images, labels in poison(batches, {2}):
                session.process_batch(images, labels)

        assert session.frames_correct == correct
        assert session.frames_processed == total
        assert session.rollbacks == method_a.rollbacks
        assert session.degraded_batches == method_a.degraded_batches
        assert session.fallback_frames == method_a.fallback_frames
        assert_states_identical(model_a.state_dict(), model_b.state_dict())

    def test_unguarded_counters_zero(self, batches):
        session = AdaptationSession(make_model(), "bn_norm")
        with session:
            for images, labels in batches[:3]:
                session.process_batch(images, labels)
        card = session.scorecard()
        assert card.rollbacks == card.degraded_batches == 0
        assert card.frames_processed == 24


class TestTeardown:
    def test_on_error_policy_keeps_adapted_state_on_clean_exit(self, batches):
        model = make_model()
        source = model.state_dict()
        with AdaptationSession(model, "bn_norm") as session:
            session.process_batch(*batches[0])
        # bn_norm folded the batch into the running stats: state moved
        changed = any(not np.array_equal(source[k], model.state_dict()[k])
                      for k in source)
        assert changed

    @pytest.mark.parametrize("method", ["bn_norm", "bn_opt"])
    @pytest.mark.parametrize("guard", [False, True])
    def test_exception_restores_source_state(self, batches, method, guard):
        model = make_model()
        source = model.state_dict()
        with pytest.raises(RuntimeError, match="stream died"):
            with AdaptationSession(model, method, guard=guard) as session:
                session.process_batch(*batches[0])
                raise RuntimeError("stream died")
        assert_states_identical(source, model.state_dict())

    def test_always_policy_restores_on_clean_exit(self, batches):
        model = make_model()
        source = model.state_dict()
        with AdaptationSession(model, "bn_norm",
                               restore="always") as session:
            session.process_batch(*batches[0])
        assert_states_identical(source, model.state_dict())

    def test_process_outside_lifecycle_raises(self, batches):
        session = AdaptationSession(make_model(), "no_adapt")
        with pytest.raises(RuntimeError):
            session.process_batch(*batches[0])
        with session:
            pass
        with pytest.raises(RuntimeError):
            session.process_batch(*batches[0])

    def test_double_start_raises(self):
        session = AdaptationSession(make_model(), "no_adapt")
        session.start()
        with pytest.raises(RuntimeError):
            session.start()

    def test_bad_restore_policy_rejected(self):
        with pytest.raises(ValueError):
            AdaptationSession(make_model(), "no_adapt", restore="never")


class TestScorecard:
    def test_fields_and_tenant_stamp(self, batches):
        session = AdaptationSession(make_model(), "bn_norm", fps=1e9,
                                    tenant="cam0")
        with session:
            for images, labels in batches[:4]:
                session.process_batch(images, labels)
            session.drop_frames(5)
        card = session.scorecard()
        assert card.tenant == "cam0"
        assert card.frames_processed == 32
        assert card.frames_dropped == 5
        assert card.frames_total == 37
        assert card.batches_total == 4
        assert card.batches_late == 4          # fps ~ 0: everything late
        assert 0.0 <= card.effective_error_pct <= 100.0

    def test_empty_stream_scores_zero(self):
        with AdaptationSession(make_model(), "no_adapt") as session:
            pass
        card = session.scorecard()
        assert card.effective_error_pct == 0.0
        assert card.mean_frame_latency_s == 0.0


class TestCheckpointResume:
    """Kill at batch K, resume on a fresh model: bit-identical stream."""

    def _run(self, session, stream):
        for images, labels in stream:
            session.process_batch(images, labels)

    @pytest.mark.parametrize("method,guard", [
        ("bn_norm", False),
        ("bn_opt", True),       # Adam moments + guard ladder state
    ])
    def test_resume_is_bit_identical(self, method, guard):
        # faults at 2 (pre-checkpoint, degrades the ladder) and 7
        # (post-resume, the restored ladder must handle it identically)
        stream = poison(make_batches(10), {2, 7} if guard else set())

        twin = AdaptationSession(make_model(), method, guard=guard,
                                 tenant="t")
        with twin:
            self._run(twin, stream)

        first = AdaptationSession(make_model(), method, guard=guard,
                                  tenant="t").start()
        self._run(first, stream[:5])
        payload = first.checkpoint()
        # the checkpoint must survive its journal/wire JSON round trip
        import json
        payload = json.loads(json.dumps(payload))

        resumed = AdaptationSession(make_model(seed=99), method,
                                    guard=guard, tenant="t")
        resumed.load_checkpoint(payload)
        assert resumed.batches_total == 5
        self._run(resumed, stream[5:])

        assert strip_timing(resumed.scorecard()) != strip_timing(
            AdaptationSession(make_model(), method, guard=guard,
                              tenant="x").start().scorecard())
        assert strip_timing(resumed.scorecard()) == \
            strip_timing(twin.scorecard())
        assert_states_identical(twin.model.state_dict(),
                                resumed.model.state_dict())

    def test_guard_ladder_position_survives(self):
        stream = poison(make_batches(8), {1})
        first = AdaptationSession(make_model(), "bn_opt", guard=True).start()
        self._run(first, stream[:3])
        guard = first.runner
        assert guard.rollbacks >= 1          # the fault degraded the ladder
        payload = first.checkpoint()

        resumed = AdaptationSession(make_model(seed=5), "bn_opt", guard=True)
        resumed.load_checkpoint(payload)
        restored = resumed.runner
        assert restored.rollbacks == guard.rollbacks
        assert restored._level == guard._level
        assert restored._healthy_streak == guard._healthy_streak
        assert restored.batches_seen == guard.batches_seen

    def test_resume_after_source_restore_matches_source(self):
        """The checkpointed *source* state is the original model's."""
        original = make_model()
        source = original.state_dict()
        session = AdaptationSession(original, "bn_norm").start()
        self._run(session, make_batches(3))
        payload = session.checkpoint()

        resumed = AdaptationSession(make_model(seed=123), "bn_norm")
        resumed.load_checkpoint(payload)
        resumed.close(restore_model=True)
        assert_states_identical(source, resumed.model.state_dict())

    def test_checkpoint_before_start_raises(self):
        with pytest.raises(RuntimeError):
            AdaptationSession(make_model(), "no_adapt").checkpoint()

    def test_load_on_started_session_raises(self):
        session = AdaptationSession(make_model(), "no_adapt").start()
        with pytest.raises(RuntimeError):
            session.load_checkpoint({"version": 1})

    def test_version_mismatch_refused(self):
        session = AdaptationSession(make_model(), "no_adapt")
        with pytest.raises(ValueError, match="version"):
            session.load_checkpoint({"version": 999})
