"""The checkpoint codec must round-trip numpy state bit-exactly."""

import json

import numpy as np
import pytest

from repro.serve.checkpoint import (
    decode_array,
    decode_model_state,
    decode_state,
    encode_array,
    encode_model_state,
    encode_state,
)


class TestArrayRoundTrip:
    @pytest.mark.parametrize("array", [
        np.arange(12, dtype=np.float32).reshape(3, 4),
        np.array([np.nan, np.inf, -np.inf, 0.1], dtype=np.float64),
        np.array([], dtype=np.float32),
        np.arange(5, dtype=np.int64),
        np.array(3.5, dtype=np.float32),            # 0-d
    ])
    def test_bit_exact(self, array):
        decoded = decode_array(encode_array(array))
        assert decoded.dtype == array.dtype
        assert decoded.shape == array.shape
        np.testing.assert_array_equal(decoded, array)

    def test_survives_json(self):
        array = np.random.default_rng(0).standard_normal((4, 4)) * 1e-7
        payload = json.loads(json.dumps(encode_array(array)))
        assert decode_array(payload).tobytes() == \
            np.ascontiguousarray(array).tobytes()

    def test_noncontiguous_input(self):
        array = np.arange(16, dtype=np.float32).reshape(4, 4).T
        np.testing.assert_array_equal(decode_array(encode_array(array)),
                                      array)


class TestStateTree:
    def test_nested_round_trip(self):
        state = {"t": 3, "m": [np.ones(2), None], "name": "adam",
                 "nested": {"v": np.zeros((2, 2)), "flag": True}}
        decoded = decode_state(json.loads(json.dumps(encode_state(state))))
        assert decoded["t"] == 3 and decoded["name"] == "adam"
        assert decoded["m"][1] is None
        np.testing.assert_array_equal(decoded["m"][0], np.ones(2))
        np.testing.assert_array_equal(decoded["nested"]["v"],
                                      np.zeros((2, 2)))
        assert decoded["nested"]["flag"] is True

    def test_numpy_scalar(self):
        decoded = decode_state(encode_state(np.float32(1.25)))
        assert decoded == np.float32(1.25)

    def test_unencodable_type_raises(self):
        with pytest.raises(TypeError):
            encode_state(object())


class TestModelState:
    def test_round_trip_with_bn_counters(self):
        state = {"conv.weight": np.random.default_rng(1).standard_normal(
            (4, 3, 3, 3)).astype(np.float32)}
        payload = json.loads(json.dumps(encode_model_state(state, [5, 7])))
        decoded_state, tracked = decode_model_state(payload)
        assert tracked == [5, 7]
        np.testing.assert_array_equal(decoded_state["conv.weight"],
                                      state["conv.weight"])
