"""SessionManager: coalescing, admission, and journal kill-resume.

The kill-resume test is the PR's acceptance contract at the manager
layer: abandon a journaled manager mid-stream without any goodbye (the
journal is fsync'd per entry, so this is what SIGKILL leaves behind),
resume a fresh manager from the same journal, finish the stream, and
the per-tenant scorecard and model bytes must equal an uninterrupted
twin's exactly.
"""

import numpy as np
import pytest

from repro.resilience.journal import scan_journal
from repro.serve.manager import AdmissionError, SessionManager, TenantSpec

from tests.test_serve.conftest import (
    assert_states_identical,
    make_batches,
    poison,
    strip_timing,
)


def spec_for(tenant, **overrides):
    base = dict(tenant=tenant, model="wrn40_2", method="bn_norm",
                batch_size=8, guard=False, queue_capacity=2,
                image_size=16, seed=3)
    base.update(overrides)
    return TenantSpec(**base)


@pytest.fixture
def manager():
    instance = SessionManager()
    yield instance
    instance.close()


class TestSpec:
    def test_fingerprint_is_stable_and_spec_sensitive(self):
        assert spec_for("a").fingerprint() == spec_for("a").fingerprint()
        assert spec_for("a").fingerprint() != \
            spec_for("a", seed=4).fingerprint()

    @pytest.mark.parametrize("tenant,overrides", [
        ("", {}), ("t", {"batch_size": 0}), ("t", {"queue_capacity": -1}),
    ])
    def test_invalid_specs_rejected(self, tenant, overrides):
        with pytest.raises(ValueError):
            spec_for(tenant, **overrides)


class TestLifecycle:
    def test_open_ingest_close(self, manager):
        manager.open_tenant(spec_for("cam0"))
        images, labels = make_batches(1, batch_size=8)[0]
        ack = manager.ingest("cam0", images, labels)
        assert ack["accepted"] == 8 and ack["batches_done"] == 1
        card = manager.close_tenant("cam0")
        assert card.tenant == "cam0" and card.frames_processed == 8
        assert manager.tenants() == []

    def test_partial_chunks_coalesce_into_batches(self, manager):
        manager.open_tenant(spec_for("cam0"))
        images, labels = make_batches(1, batch_size=20)[0]
        # 20 frames, batch_size 8: two batches run, 4 frames stay queued
        ack = manager.ingest("cam0", images, labels)
        assert ack == dict(accepted=20, dropped=0, batches_done=2,
                           rollbacks=0, degraded_batches=0,
                           fallback_frames=0, duplicate=False)
        ack = manager.ingest("cam0", images[:4], labels[:4])
        assert ack["batches_done"] == 3

    def test_admission_drops_past_capacity(self, manager):
        manager.open_tenant(spec_for("cam0", queue_capacity=0))
        # capacity = (0 + 1) * 8 = 8 buffered frames
        images, labels = make_batches(1, batch_size=20)[0]
        ack = manager.ingest("cam0", images, labels)
        assert ack["accepted"] == 8 and ack["dropped"] == 12
        card = manager.scorecard("cam0")
        assert card.frames_dropped == 12
        assert card.frames_total == card.frames_processed + 12

    def test_max_tenants_enforced(self):
        manager = SessionManager(max_tenants=1)
        try:
            manager.open_tenant(spec_for("cam0"))
            with pytest.raises(AdmissionError, match="limit"):
                manager.open_tenant(spec_for("cam1"))
        finally:
            manager.close()

    def test_reopen_live_tenant_reattaches(self, manager):
        manager.open_tenant(spec_for("cam0"))
        images, labels = make_batches(1, batch_size=8)[0]
        manager.ingest("cam0", images, labels)
        opened = manager.open_tenant(spec_for("cam0"))
        assert opened == {"resumed": True, "batches_done": 1,
                          "chunk": -1}

    def test_reopen_live_tenant_with_other_spec_refused(self, manager):
        manager.open_tenant(spec_for("cam0"))
        with pytest.raises(AdmissionError, match="different"):
            manager.open_tenant(spec_for("cam0", seed=9))

    def test_unknown_tenant_refused(self, manager):
        with pytest.raises(AdmissionError, match="unknown"):
            manager.ingest("ghost", np.zeros((1, 3, 16, 16)), np.zeros(1))

    def test_faults_tally_onto_scorecard(self, manager):
        manager.open_tenant(spec_for("cam0"))
        images, labels = make_batches(1, batch_size=8)[0]
        manager.ingest("cam0", images, labels, faults=3)
        assert manager.scorecard("cam0").faults_injected == 3


class TestJournalResume:
    def _chunks(self):
        # guarded bn_opt with a fault before and after the kill point
        return poison(make_batches(10, batch_size=8, seed=11), {2, 7})

    def _feed(self, manager, tenant, chunks, faults_at=(2, 7)):
        for index, (images, labels) in enumerate(chunks):
            manager.ingest(tenant, images, labels,
                           faults=1 if index in faults_at else 0)

    def _spec(self):
        return spec_for("cam0", method="bn_opt", guard=True)

    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        chunks = self._chunks()

        twin = SessionManager()
        twin.open_tenant(self._spec())
        self._feed(twin, "cam0", chunks)
        twin_state = twin.session("cam0").model.state_dict()
        twin_card = twin.scorecard("cam0")
        assert twin_card.rollbacks >= 1      # the faults actually bit

        journal = str(tmp_path / "serve.jsonl")
        first = SessionManager(journal=journal)
        first.open_tenant(self._spec())
        self._feed(first, "cam0", chunks[:5])
        # SIGKILL: no close_tenant, no close — the journal already has
        # every per-batch checkpoint fsync'd
        del first

        second = SessionManager(journal=journal, resume=True)
        try:
            opened = second.open_tenant(self._spec())
            assert opened == {"resumed": True, "batches_done": 5,
                              "chunk": -1}
            self._feed(second, "cam0", chunks[5:],
                       faults_at={2})        # chunk index 7 is now 2
            assert strip_timing(second.scorecard("cam0")) == \
                strip_timing(twin_card)
            assert_states_identical(twin_state,
                                    second.session("cam0").model.state_dict())
        finally:
            second.close()
        twin.close()

    def test_resume_under_changed_spec_refused(self, tmp_path):
        journal = str(tmp_path / "serve.jsonl")
        first = SessionManager(journal=journal)
        first.open_tenant(self._spec())
        self._feed(first, "cam0", self._chunks()[:2], faults_at=())
        del first

        second = SessionManager(journal=journal, resume=True)
        try:
            with pytest.raises(AdmissionError, match="different spec"):
                second.open_tenant(spec_for("cam0", method="bn_opt",
                                            guard=True, seed=99))
        finally:
            second.close()

    def test_closed_tenant_does_not_resume(self, tmp_path):
        journal = str(tmp_path / "serve.jsonl")
        first = SessionManager(journal=journal)
        first.open_tenant(self._spec())
        self._feed(first, "cam0", self._chunks()[:2], faults_at=())
        first.close_tenant("cam0")
        del first

        second = SessionManager(journal=journal, resume=True)
        try:
            opened = second.open_tenant(self._spec())
            assert opened == {"resumed": False, "batches_done": 0,
                              "chunk": -1}
        finally:
            second.close()

    def test_journal_records_serve_events(self, tmp_path):
        journal = str(tmp_path / "serve.jsonl")
        manager = SessionManager(journal=journal)
        manager.open_tenant(self._spec())
        self._feed(manager, "cam0", self._chunks()[:2], faults_at=())
        manager.close_tenant("cam0")
        manager.close()

        events = [entry["event"] for entry in scan_journal(journal).entries]
        assert events[0] == "serve_start"
        assert events.count("tenant_open") == 1
        assert events.count("tenant_checkpoint") == 2
        assert events[-1] == "tenant_close"

    def test_checkpoint_every_thins_journal(self, tmp_path):
        journal = str(tmp_path / "serve.jsonl")
        manager = SessionManager(journal=journal, checkpoint_every=3)
        manager.open_tenant(self._spec())
        self._feed(manager, "cam0", self._chunks()[:6], faults_at=())
        manager.close()

        events = [entry["event"] for entry in scan_journal(journal).entries]
        assert events.count("tenant_checkpoint") == 2    # batches 3 and 6
