"""The selectors event loop: pipelining, connection fan-in, and
deadline sweeps interacting with oversized-frame skip mode.

These tests poke the daemon below the :class:`ServeClient` abstraction
— raw sockets, several messages in flight, many connections at once —
the traffic shapes a thread-per-connection server handled by blocking
and the event loop must handle by multiplexing.
"""

import socket
import struct
import threading

import pytest

from repro.serve import protocol
from repro.serve.client import ServeClient
from repro.serve.daemon import ServeDaemon
from repro.serve.manager import SessionManager, TenantSpec

from tests.test_serve.conftest import make_batches


def spec_for(tenant, **overrides):
    base = dict(tenant=tenant, model="wrn40_2", method="bn_norm",
                batch_size=8, guard=False, queue_capacity=2,
                image_size=16, seed=3)
    base.update(overrides)
    return TenantSpec(**base)


def start_daemon(manager, **kwargs):
    daemon = ServeDaemon(manager, host="127.0.0.1", port=0, **kwargs)
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    return daemon, thread


@pytest.fixture
def daemon():
    instance, thread = start_daemon(SessionManager())
    yield instance
    instance.shutdown()
    instance.close()
    thread.join(timeout=5)


def raw_connect(daemon):
    host, port = daemon.address
    sock = socket.create_connection((host, port), timeout=10.0)
    sock.settimeout(10.0)
    return sock


class TestPipelining:
    def test_back_to_back_requests_answered_in_order(self, daemon):
        """Several requests written before any reply is read: the loop
        parses them all from one buffer and answers strictly in order."""
        sock = raw_connect(daemon)
        try:
            for _ in range(5):
                protocol.send_message(sock, {"type": "status"})
            protocol.send_message(sock, {"type": "nonsense"})
            for _ in range(5):
                reply = protocol.recv_message(sock)
                assert reply["type"] == "status"
            reply = protocol.recv_message(sock)
            assert reply["type"] == "error"
            assert "first message must be 'hello'" in reply["reason"]
        finally:
            sock.close()

    def test_interleaved_tenants_on_separate_connections(self, daemon):
        """Frames from many connections interleave through one loop and
        every tenant's arithmetic stays exact."""
        errors = []

        def stream(tenant, seed):
            try:
                host, port = daemon.address
                with ServeClient.connect(host, port,
                                         timeout=10.0) as client:
                    client.hello(spec_for(tenant))
                    total = 0
                    for images, labels in make_batches(
                            3, batch_size=8, seed=seed):
                        ack = client.send_frames(images, labels)
                        total += ack["accepted"]
                    card = client.close_tenant()
                    assert total == 24
                    assert card.frames_processed == 24
            except Exception as error:  # noqa: BLE001 — surfaced below
                errors.append((tenant, error))

        threads = [threading.Thread(target=stream, args=(f"cam{i}", i))
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        assert daemon.manager.tenants() == []


class TestConnectionAccounting:
    def test_status_counts_open_connections(self, daemon):
        host, port = daemon.address
        with ServeClient.connect(host, port, timeout=10.0) as first:
            with ServeClient.connect(host, port, timeout=10.0) as second:
                status = second.status()
                assert status["connections"] >= 2
                assert status["scheduler"]["workers"] >= 1
            assert first.status()["connections"] >= 1

    def test_many_idle_connections_then_one_worker(self, daemon):
        """Dozens of parked sockets cost the loop nothing; a request on
        the last one still gets served promptly."""
        parked = [raw_connect(daemon) for _ in range(32)]
        try:
            active = parked[-1]
            protocol.send_message(active, {"type": "status"})
            reply = protocol.recv_message(active)
            assert reply["connections"] >= 32
        finally:
            for sock in parked:
                sock.close()


class TestDeadlinesAndSkip:
    def test_oversized_frame_refused_connection_survives(self):
        manager = SessionManager()
        daemon, thread = start_daemon(manager, max_message_bytes=1024)
        try:
            sock = raw_connect(daemon)
            try:
                big = b"x" * 4096
                sock.sendall(struct.pack(">I", len(big)) + big)
                reply = protocol.recv_message(sock)
                assert reply["type"] == "error"
                assert "exceeds" in reply["reason"]
                # the offending frame was skipped, not fatal: the same
                # connection keeps working
                protocol.send_message(sock, {"type": "status"})
                assert protocol.recv_message(sock)["type"] == "status"
            finally:
                sock.close()
        finally:
            daemon.shutdown()
            daemon.close()
            thread.join(timeout=5)

    def test_eviction_mid_skip_of_oversized_frame(self):
        """A sender that declares a huge frame, dribbles part of it,
        then stalls is evicted by the deadline sweep while the parser
        is still in skip mode."""
        manager = SessionManager()
        daemon, thread = start_daemon(manager, max_message_bytes=1024,
                                      io_timeout=0.5)
        try:
            sock = raw_connect(daemon)
            try:
                sock.sendall(struct.pack(">I", 1 << 20) + b"y" * 100)
                reply = protocol.recv_message(sock)
                assert reply["type"] == "error"
                assert "evicting connection" in reply["reason"]
                assert protocol.recv_message(sock) is None    # then EOF
            finally:
                sock.close()
            assert daemon.status()["evicted_connections"] == 1
        finally:
            daemon.shutdown()
            daemon.close()
            thread.join(timeout=5)
