"""Load generation: the arrival grammar, seeded schedules, and the
end-to-end latency harness against a real in-process daemon."""

import json
import threading

import numpy as np
import pytest

from repro.cli import main
from repro.serve.daemon import ServeDaemon
from repro.serve.loadgen import (
    ARRIVAL_KINDS,
    ArrivalSpec,
    TenantLoad,
    latency_percentiles,
    parse_arrival_spec,
    run_loadgen,
    run_serving_bench,
)
from repro.serve.manager import SessionManager, TenantSpec


class TestArrivalGrammar:
    @pytest.mark.parametrize("text,expected", [
        ("uniform", ArrivalSpec("uniform", 64.0, 4)),
        ("poisson:rate=120", ArrivalSpec("poisson", 120.0, 4)),
        ("burst:rate=64+size=8", ArrivalSpec("burst", 64.0, 8)),
        (" uniform : rate=32 ", ArrivalSpec("uniform", 32.0, 4)),
    ])
    def test_parse(self, text, expected):
        assert parse_arrival_spec(text) == expected

    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_compact_round_trips(self, kind):
        # size only shapes (and serializes for) burst arrivals
        size = 3 if kind == "burst" else 4
        spec = ArrivalSpec(kind=kind, rate=96.0, size=size)
        assert parse_arrival_spec(spec.compact()) == spec

    @pytest.mark.parametrize("text,match", [
        ("", "empty"),
        ("warp:rate=9", "unknown arrival kind"),
        ("poisson:pace=9", "unknown parameter"),
        ("poisson:rate", "key=value"),
        ("poisson:rate=fast", "non-numeric"),
        ("uniform:rate=0", "rate must be"),
        ("burst:size=0", "size must be"),
    ])
    def test_rejections(self, text, match):
        with pytest.raises(ValueError, match=match):
            parse_arrival_spec(text)


class TestSchedules:
    def test_uniform_gaps_are_the_interval(self):
        offsets = ArrivalSpec("uniform", rate=64.0).offsets(5, 16)
        np.testing.assert_allclose(offsets, np.arange(5) * 0.25)

    def test_poisson_is_seeded_and_seed_sensitive(self):
        spec = ArrivalSpec("poisson", rate=64.0)
        again = ArrivalSpec("poisson", rate=64.0)
        np.testing.assert_array_equal(spec.offsets(20, 16, seed=7),
                                      again.offsets(20, 16, seed=7))
        assert not np.array_equal(spec.offsets(20, 16, seed=7),
                                  spec.offsets(20, 16, seed=8))

    def test_poisson_mean_gap_tracks_the_rate(self):
        offsets = ArrivalSpec("poisson", rate=64.0).offsets(2000, 16)
        mean_gap = float(np.diff(offsets).mean())
        assert mean_gap == pytest.approx(16 / 64.0, rel=0.15)

    def test_burst_fires_then_pauses(self):
        offsets = ArrivalSpec("burst", rate=64.0, size=4).offsets(8, 16)
        # 4 back-to-back sends, then a pause that restores the rate
        np.testing.assert_allclose(offsets[:4], 0.0)
        np.testing.assert_allclose(offsets[4:], 1.0)

    def test_offsets_are_monotonic(self):
        for kind in ARRIVAL_KINDS:
            offsets = ArrivalSpec(kind, rate=50.0).offsets(50, 8, seed=3)
            assert np.all(np.diff(offsets) >= 0)


class TestPercentiles:
    def test_empty_is_all_zero(self):
        assert latency_percentiles([]) == {
            "p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}

    def test_ordering_and_max(self):
        values = list(range(1, 101))
        result = latency_percentiles(values)
        assert result["p50"] <= result["p95"] <= result["p99"] \
            <= result["max"] == 100.0


def serve_in_process(**manager_kwargs):
    manager = SessionManager(**manager_kwargs)
    daemon = ServeDaemon(manager)
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    return daemon, thread


def load_for(tenant, frames=32, batch_size=8, arrival="uniform:rate=512"):
    return TenantLoad(
        spec=TenantSpec(tenant=tenant, model="wrn40_2", method="bn_norm",
                        batch_size=batch_size, guard=False,
                        queue_capacity=2, image_size=16, seed=3),
        frames=frames, arrival=parse_arrival_spec(arrival))


class TestRunLoadgen:
    def test_two_tenants_end_to_end(self):
        daemon, thread = serve_in_process()
        try:
            host, port = daemon.address
            report = run_loadgen(host, port,
                                 [load_for("cam0"), load_for("cam1")],
                                 seed=5)
        finally:
            daemon.shutdown()
            daemon.close()
            thread.join(timeout=5)
        assert report["tenants"] == ["cam0", "cam1"]
        assert report["errors"] == 0 and report["error_messages"] == []
        assert report["requests"] == 8          # 2 tenants x 32/8 chunks
        assert report["frames_offered"] == 64
        assert report["frames_accepted"] == 64
        assert report["frames_dropped"] == 0
        assert report["frames_per_s"] > 0
        latency = report["latency_ms"]
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]
        for tenant in ("cam0", "cam1"):
            per = report["per_tenant"][tenant]
            assert per["frames_accepted"] == 32
            assert per["batches_done"] == 4
        # the sampler got at least a few depth readings in
        assert report["queue_depth"]["samples"] >= 0

    def test_requires_at_least_one_load(self):
        with pytest.raises(ValueError, match="at least one"):
            run_loadgen("127.0.0.1", 1, [])

    def test_unreachable_daemon_reports_errors_not_hangs(self):
        report = run_loadgen("127.0.0.1", 1, [load_for("cam0")],
                             seed=0, status_every_s=0.0,
                             connect_timeout=0.2)
        assert report["errors"] == 1
        assert report["frames_accepted"] == 0
        assert "connect" in report["error_messages"][0]


class TestRunServingBench:
    def test_smoke_section_shape(self):
        section = run_serving_bench(tenants=2, frames_per_tenant=16,
                                    batch_size=8, method="bn_norm",
                                    guard=False,
                                    arrival="uniform:rate=512")
        assert section["errors"] == 0
        assert section["frames_accepted"] == 32
        assert section["frames_dropped"] == 0
        assert section["config"]["tenants"] == 2
        assert section["config"]["arrival"] == "uniform:rate=512"
        assert set(section["latency_ms"]) == \
            {"p50", "p95", "p99", "mean", "max"}
        assert section["frames_per_s"] > 0
        # the full report rides along for humans
        assert section["report"]["tenants"] == ["load0", "load1"]


class TestServeClientLoadCli:
    def test_paced_stream_prints_latency_summary(self, capsys):
        daemon, thread = serve_in_process()
        try:
            _, port = daemon.address
            assert main(["serve-client", "--port", str(port),
                         "--tenant", "cli0", "--method", "bn_norm",
                         "--no-guard", "--batch-size", "8",
                         "--frames", "16", "--corruption", "clean",
                         "--load", "uniform:rate=512"]) == 0
            out = capsys.readouterr().out
            assert "load: 2 request(s)" in out
            assert "uniform:rate=512" in out
            assert "frames/s" in out
        finally:
            daemon.shutdown()
            daemon.close()
            thread.join(timeout=5)

    def test_duration_cycles_the_frame_set(self, capsys):
        daemon, thread = serve_in_process()
        try:
            _, port = daemon.address
            # 8 frames at 256/s cycle for a wall-clock second: far more
            # requests than the one the frame count alone would allow
            assert main(["serve-client", "--port", str(port),
                         "--tenant", "cli1", "--method", "bn_norm",
                         "--no-guard", "--batch-size", "8",
                         "--frames", "8", "--corruption", "clean",
                         "--load", "poisson:rate=256",
                         "--duration", "1.0"]) == 0
            out = capsys.readouterr().out
            requests = int(out.split("load: ")[1].split(" request")[0])
            assert requests > 1
        finally:
            daemon.shutdown()
            daemon.close()
            thread.join(timeout=5)

    def test_duration_without_load_exits_two(self, capsys):
        assert main(["serve-client", "--port", "7399", "--tenant", "x",
                     "--duration", "5"]) == 2
        assert "--duration requires --load" in capsys.readouterr().err


class TestServeBenchCli:
    @pytest.fixture
    def stub_section(self, monkeypatch):
        section = {
            "config": {"tenants": 2, "frames_per_tenant": 96,
                       "batch_size": 16, "arrival": "poisson:rate=256",
                       "seed": 0, "workers": 2, "method": "bn_opt",
                       "guard": True},
            "requests": 12, "frames_accepted": 192, "frames_dropped": 0,
            "frames_per_s": 250.0,
            "latency_ms": {"p50": 40.0, "p95": 70.0, "p99": 90.0,
                           "mean": 45.0, "max": 95.0},
            "open_loop_latency_ms": {"p50": 40.0, "p95": 70.0,
                                     "p99": 90.0, "mean": 45.0,
                                     "max": 95.0},
            "queue_depth": {"samples": 20, "mean": 4.0, "max": 16},
            "errors": 0,
            "report": {"error_messages": []},
        }
        import repro.serve.loadgen as loadgen_mod

        def fake_bench(**kwargs):
            return json.loads(json.dumps(section))

        monkeypatch.setattr(loadgen_mod, "run_serving_bench", fake_bench)
        return section

    def test_writes_bench_shaped_doc(self, stub_section, tmp_path,
                                     capsys):
        out = tmp_path / "serve-bench.json"
        assert main(["serve-bench", "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["format"] == "repro.engine_bench"
        assert doc["serving"]["latency_ms"]["p99"] == 90.0
        assert "p99 90.0ms" in capsys.readouterr().out

    def test_compare_green_on_parity(self, stub_section, tmp_path,
                                     capsys):
        out = tmp_path / "serve-bench.json"
        assert main(["serve-bench", "--json", str(out)]) == 0
        assert main(["serve-bench", "--compare", str(out)]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_compare_red_on_regression(self, stub_section, tmp_path,
                                       capsys):
        baseline = tmp_path / "baseline.json"
        fast = json.loads(json.dumps(stub_section))
        fast["latency_ms"]["p99"] = 30.0        # current 90ms = 3x worse
        baseline.write_text(json.dumps(
            {"format": "repro.engine_bench", "version": 3,
             "serving": fast}))
        assert main(["serve-bench", "--compare", str(baseline),
                     "--tolerance", "40"]) == 1
        captured = capsys.readouterr()
        assert "serving/latency_p99_ms" in captured.out
        assert "perf regression" in captured.err

    def test_load_errors_exit_nonzero(self, stub_section, monkeypatch,
                                      capsys):
        import repro.serve.loadgen as loadgen_mod
        failing = json.loads(json.dumps(stub_section))
        failing["errors"] = 2
        failing["report"]["error_messages"] = ["chunk 3: boom"]
        monkeypatch.setattr(loadgen_mod, "run_serving_bench",
                            lambda **kwargs: failing)
        assert main(["serve-bench"]) == 1
        assert "boom" in capsys.readouterr().err

    def test_bad_arrival_spec_exits_two(self, capsys):
        assert main(["serve-bench", "--arrival", "warp:rate=9"]) == 2
        assert "unknown arrival kind" in capsys.readouterr().err
