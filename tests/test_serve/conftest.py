"""Shared helpers for the serve-layer tests: tiny models and streams."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.models.wide_resnet import wide_resnet40_2
from repro.nn import init as nn_init


def make_model(seed: int = 7):
    """A deterministic micro WRN (same seed -> bit-identical weights)."""
    nn_init.seed(seed)
    model = wide_resnet40_2(depth=10, widen_factor=1, base=4)
    model.eval()
    return model


def make_batches(num_batches: int, batch_size: int = 8, seed: int = 0,
                 image_size: int = 16):
    """Deterministic (images, labels) batches, materialized as a list."""
    rng = np.random.default_rng(seed)
    return [(rng.standard_normal(
                 (batch_size, 3, image_size, image_size)).astype(np.float32),
             rng.integers(0, 10, batch_size))
            for _ in range(num_batches)]


def poison(batches, indices):
    """Copy ``batches`` with the given batch indices NaN-poisoned."""
    faulted = []
    for index, (images, labels) in enumerate(batches):
        if index in indices:
            images = images.copy()
            images[0] = np.nan
        faulted.append((images, labels))
    return faulted


def strip_timing(card):
    """A scorecard with the wall-clock-only fields zeroed.

    Wall time is the one thing two executions of the same stream cannot
    share; every other field must be bit-identical — the same contract
    :func:`repro.core.io.canonical_dumps` applies to study results.
    """
    return dataclasses.replace(card, mean_frame_latency_s=0.0,
                               wall_time_s=0.0)


def assert_states_identical(state_a, state_b):
    """Both model state dicts hold bit-identical arrays."""
    assert set(state_a) == set(state_b)
    for name in state_a:
        np.testing.assert_array_equal(state_a[name], state_b[name],
                                      err_msg=name)


@pytest.fixture
def batches():
    return make_batches(10)
