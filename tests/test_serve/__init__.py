# test package for repro.serve
