"""Wire framing: length-prefixed JSON round trips and refusals."""

import socket
import struct

import pytest

from repro.core.streaming import StreamScorecard
from repro.serve import protocol


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_round_trip(self, pair):
        left, right = pair
        message = {"type": "hello", "tenant": "cam0", "n": 3,
                   "unicode": "π ≈ 3.14159"}
        protocol.send_message(left, message)
        assert protocol.recv_message(right) == message

    def test_multiple_messages_in_order(self, pair):
        left, right = pair
        for index in range(5):
            protocol.send_message(left, {"type": "frames", "index": index})
        for index in range(5):
            assert protocol.recv_message(right)["index"] == index

    def test_clean_eof_returns_none(self, pair):
        left, right = pair
        left.close()
        assert protocol.recv_message(right) is None

    def test_truncated_message_raises(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", 100) + b'{"type":')
        left.close()
        with pytest.raises(protocol.ProtocolError, match="mid-message"):
            protocol.recv_message(right)

    def test_oversized_declared_length_refused(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", protocol.MAX_MESSAGE_BYTES + 1))
        with pytest.raises(protocol.ProtocolError, match="limit"):
            protocol.recv_message(right)

    def test_non_json_payload_raises(self, pair):
        left, right = pair
        payload = b"\xff\xfe not json"
        left.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(protocol.ProtocolError, match="undecodable"):
            protocol.recv_message(right)

    def test_message_without_type_raises(self, pair):
        left, right = pair
        payload = b'{"no_type": 1}'
        left.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(protocol.ProtocolError, match="'type'"):
            protocol.recv_message(right)


class TestScorecardCodec:
    def test_round_trip(self):
        card = StreamScorecard(
            frames_total=10, frames_processed=8, frames_dropped=2,
            batches_late=1, batches_total=2, mean_frame_latency_s=0.25,
            effective_error_pct=42.5, energy_j=0.0, wall_time_s=2.0,
            faults_injected=1, rollbacks=3, degraded_batches=1,
            fallback_frames=8, tenant="cam1")
        assert protocol.scorecard_from_dict(
            protocol.scorecard_to_dict(card)) == card
