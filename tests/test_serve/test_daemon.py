"""End-to-end daemon tests over real TCP (port 0, loopback).

Covers the serve smoke contract (two tenants with faulty frames, guard
rollbacks visible in acks and scorecards), protocol refusals, and the
daemon-level kill-resume: kill the whole server between chunks, start a
new one on the same journal, and the finished stream must match an
uninterrupted twin bit-for-bit.
"""

import threading

import numpy as np
import pytest

from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import ServeDaemon
from repro.serve.manager import SessionManager, TenantSpec
from repro.serve import protocol

from tests.test_serve.conftest import (
    assert_states_identical,
    make_batches,
    poison,
    strip_timing,
)


def spec_for(tenant, **overrides):
    base = dict(tenant=tenant, model="wrn40_2", method="bn_opt",
                batch_size=8, guard=True, queue_capacity=2,
                image_size=16, seed=3)
    base.update(overrides)
    return TenantSpec(**base)


def start_daemon(manager):
    daemon = ServeDaemon(manager, host="127.0.0.1", port=0)
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    return daemon, thread


@pytest.fixture
def daemon():
    instance, thread = start_daemon(SessionManager())
    yield instance
    instance.shutdown()
    instance.close()
    thread.join(timeout=5)


def connect(daemon):
    host, port = daemon.address
    return ServeClient.connect(host, port, timeout=5.0)


class TestServeSmoke:
    def test_two_tenants_with_faults_roll_back(self, daemon):
        """The CI smoke scenario, in-process: both guarded tenants see
        NaN frames and must report rollbacks, not crashes."""
        chunks = poison(make_batches(4, batch_size=8, seed=2), {1})
        cards = {}
        for tenant in ("cam0", "cam1"):
            with connect(daemon) as client:
                welcome = client.hello(spec_for(tenant))
                assert welcome["resumed"] is False
                for index, (images, labels) in enumerate(chunks):
                    ack = client.send_frames(
                        images, labels, faults=1 if index == 1 else 0)
                    assert ack["dropped"] == 0
                assert ack["rollbacks"] >= 1
                cards[tenant] = client.close_tenant()
        for tenant, card in cards.items():
            assert card.tenant == tenant
            assert card.rollbacks >= 1
            assert card.faults_injected == 1
            assert card.frames_processed == 32
        assert daemon.manager.tenants() == []

    def test_scorecard_midstream_and_reconnect(self, daemon):
        images, labels = make_batches(1, batch_size=8, seed=4)[0]
        with connect(daemon) as client:
            client.hello(spec_for("cam0"))
            client.send_frames(images, labels)
        # connection dropped without close: the session survives in the
        # manager and a new connection re-attaches
        with connect(daemon) as client:
            welcome = client.hello(spec_for("cam0"))
            assert welcome == {"type": "welcome", "tenant": "cam0",
                               "resumed": True, "batches_done": 1,
                               "chunk": 0}
            assert client.scorecard().frames_processed == 8
            client.close_tenant()


class TestRefusals:
    def test_frames_before_hello_refused(self, daemon):
        with connect(daemon) as client:
            with pytest.raises(ServeError, match="hello"):
                client.send_frames(np.zeros((1, 3, 16, 16)), np.zeros(1))

    def test_protocol_version_mismatch_refused(self, daemon):
        with connect(daemon) as client:
            protocol.send_message(client._sock, {
                "type": "hello", "protocol": protocol.PROTOCOL_VERSION + 1,
                "spec": {"tenant": "cam0"}})
            reply = protocol.recv_message(client._sock)
            assert reply["type"] == "error"
            assert "version" in reply["reason"]

    def test_bad_spec_refused_but_connection_survives(self, daemon):
        with connect(daemon) as client:
            # invalid spec straight onto the wire (the typed client
            # would refuse to construct it locally)
            protocol.send_message(client._sock, {
                "type": "hello", "protocol": protocol.PROTOCOL_VERSION,
                "spec": {"tenant": "cam0", "batch_size": 0}})
            reply = protocol.recv_message(client._sock)
            assert reply["type"] == "error"
            # same connection recovers with a valid hello
            assert client.hello(spec_for("cam0"))["resumed"] is False
            client.close_tenant()

    def test_unknown_message_type_refused(self, daemon):
        with connect(daemon) as client:
            client.hello(spec_for("cam0"))
            protocol.send_message(client._sock, {"type": "frobnicate"})
            reply = protocol.recv_message(client._sock)
            assert reply["type"] == "error"
            client.close_tenant()


class TestDaemonKillResume:
    def test_killed_daemon_resumes_bit_identically(self, tmp_path):
        chunks = poison(make_batches(10, batch_size=8, seed=11), {2, 7})
        faults = {2: 1, 7: 1}

        def feed(client, indexed_chunks):
            for index, (images, labels) in indexed_chunks:
                client.send_frames(images, labels,
                                   faults=faults.get(index, 0))

        twin_manager = SessionManager()
        twin, twin_thread = start_daemon(twin_manager)
        with connect(twin) as client:
            client.hello(spec_for("cam0"))
            feed(client, enumerate(chunks))
            twin_card = client.scorecard()
        twin_state = twin_manager.session("cam0").model.state_dict()
        twin.shutdown()
        twin.server_close()
        twin_thread.join(timeout=5)
        assert twin_card.rollbacks >= 1

        journal = str(tmp_path / "serve.jsonl")
        first, first_thread = start_daemon(SessionManager(journal=journal))
        with connect(first) as client:
            client.hello(spec_for("cam0"))
            feed(client, list(enumerate(chunks))[:5])
        # SIGKILL the daemon: drop the socket without closing the
        # manager or journal — the per-batch checkpoints are on disk
        first.shutdown()
        first.server_close()
        first_thread.join(timeout=5)

        second_manager = SessionManager(journal=journal, resume=True)
        second, second_thread = start_daemon(second_manager)
        try:
            with connect(second) as client:
                welcome = client.hello(spec_for("cam0"))
                assert welcome["resumed"] is True
                assert welcome["batches_done"] == 5
                feed(client, list(enumerate(chunks))[5:])
                assert strip_timing(client.scorecard()) == \
                    strip_timing(twin_card)
            assert_states_identical(
                twin_state, second_manager.session("cam0").model.state_dict())
        finally:
            second.shutdown()
            second.close()
            second_thread.join(timeout=5)


class TestShutdown:
    def test_client_initiated_shutdown(self):
        daemon, thread = start_daemon(SessionManager())
        with connect(daemon) as client:
            client.shutdown()
        thread.join(timeout=5)
        assert not thread.is_alive()
        daemon.close()
