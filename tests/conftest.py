"""Shared fixtures for the test suite.

Heavy objects (full-size model summaries, the simulated study grid, a
briefly-trained micro model) are session-scoped so the suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import StudyConfig
from repro.core.runner import run_simulated_study
from repro.models.registry import MODEL_NAMES, build_model
from repro.models.summary import summarize


@pytest.fixture(scope="session", autouse=True)
def lockwatch_session():
    """Run the whole suite under the runtime lock-order watchdog.

    Opt-in: a no-op unless ``REPRO_LOCKWATCH=1`` (CI's lockwatch smoke
    leg sets it).  When active, every lock constructed during the
    session is instrumented; at teardown the observed-order report is
    written to ``REPRO_LOCKWATCH_REPORT`` (when set) and any recorded
    inversion fails the run.
    """
    from repro.analysis.lockwatch import (finish_watch, lockwatch_enabled,
                                          maybe_instrument)

    if not lockwatch_enabled():
        yield None
        return
    with maybe_instrument() as watch:
        yield watch
    finish_watch(watch)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def full_summaries():
    """Analytical summaries of the four full-size paper models."""
    return {name: summarize(build_model(name, "full"), name=name)
            for name in MODEL_NAMES}


@pytest.fixture(scope="session")
def simulated_study():
    """The full simulated paper grid (108 records)."""
    return run_simulated_study(StudyConfig())


@pytest.fixture(scope="session")
def micro_trained_model():
    """A very small WRN trained briefly on tiny synthetic data.

    Used by integration tests that need a model with genuinely learned
    BN statistics; kept small so the whole suite trains it in seconds.
    """
    from repro.data.synthetic import make_synth_cifar
    from repro.models.wide_resnet import wide_resnet40_2
    from repro.train.trainer import TrainConfig, Trainer

    model = wide_resnet40_2(depth=10, widen_factor=1, base=4)
    data = make_synth_cifar(1500, size=16, seed=3)
    Trainer(model, TrainConfig(epochs=8, batch_size=64, lr=0.08,
                               use_augmix=False, seed=3)).fit(data)
    return model, data
