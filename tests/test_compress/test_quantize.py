"""Quantization: numerics, model pass, cost projection."""

import numpy as np
import pytest

from repro.compress import (quantize_model_weights,
                            quantize_tensor,
                            quantized_cost)
from repro.models import build_model
from repro.tensor import Tensor, no_grad


class TestQuantizeTensor:
    def test_round_trip_error_bounded_by_half_step(self, rng):
        values = rng.standard_normal(1000).astype(np.float32)
        out = quantize_tensor(values, bits=8)
        step = np.abs(values).max() / 127
        assert np.abs(out - values).max() <= step / 2 + 1e-7

    def test_more_bits_less_error(self, rng):
        values = rng.standard_normal(500).astype(np.float32)
        errors = [np.abs(quantize_tensor(values, bits) - values).mean()
                  for bits in (4, 6, 8)]
        assert errors[0] > errors[1] > errors[2]

    def test_idempotent(self, rng):
        values = rng.standard_normal(100).astype(np.float32)
        once = quantize_tensor(values, 8)
        twice = quantize_tensor(once, 8)
        np.testing.assert_allclose(once, twice, atol=1e-6)

    def test_per_channel_beats_per_tensor(self, rng):
        # channels with very different ranges: per-tensor wastes levels
        values = np.concatenate([
            rng.standard_normal((1, 64)) * 10.0,
            rng.standard_normal((1, 64)) * 0.01,
        ]).astype(np.float32)
        per_tensor = np.abs(quantize_tensor(values, 4) - values).mean()
        per_channel = np.abs(quantize_tensor(values, 4, channel_axis=0)
                             - values).mean()
        assert per_channel < per_tensor

    def test_zeros_stay_zero(self):
        values = np.zeros(10, dtype=np.float32)
        np.testing.assert_array_equal(quantize_tensor(values, 8), values)

    def test_bits_validation(self, rng):
        with pytest.raises(ValueError):
            quantize_tensor(rng.standard_normal(4), 1)
        with pytest.raises(ValueError):
            quantize_tensor(rng.standard_normal(4), 17)

    def test_symmetric(self, rng):
        values = rng.standard_normal(200).astype(np.float32)
        out_pos = quantize_tensor(values, 6)
        out_neg = quantize_tensor(-values, 6)
        np.testing.assert_allclose(out_pos, -out_neg, atol=1e-6)


class TestQuantizeModel:
    def test_quantizes_all_conv_linear(self, rng):
        model = build_model("wrn40_2", "tiny")
        report = quantize_model_weights(model, bits=8)
        from repro import nn
        prunable = sum(1 for m in model.modules()
                       if isinstance(m, (nn.Conv2d, nn.Linear)))
        assert len(report.layers) == prunable
        assert report.mean_rmse > 0

    def test_bn_affine_untouched(self):
        model = build_model("wrn40_2", "tiny")
        from repro.adapt import bn_parameters
        before = [p.data.copy() for p in bn_parameters(model)]
        quantize_model_weights(model, bits=4)
        for p, b in zip(bn_parameters(model), before):
            np.testing.assert_array_equal(p.data, b)

    def test_model_still_runs_and_predicts_similarly_at_8_bits(self, rng):
        model = build_model("wrn40_2", "tiny")
        x = rng.standard_normal((4, 3, 16, 16)).astype(np.float32)
        model.eval()
        with no_grad():
            before = model(Tensor(x)).data
        quantize_model_weights(model, bits=8)
        with no_grad():
            after = model(Tensor(x)).data
        # int8 per-channel quantization barely perturbs the logits
        assert np.abs(after - before).max() < 0.5 * np.abs(before).max() + 0.5

    def test_lower_bits_larger_rmse(self):
        rmse = {}
        for bits in (4, 8):
            model = build_model("wrn40_2", "tiny")
            rmse[bits] = quantize_model_weights(model, bits=bits).mean_rmse
        assert rmse[4] > rmse[8]


class TestQuantizedCost:
    def test_speedup_and_memory(self, full_summaries):
        from repro.devices import device_info, forward_latency
        summary = full_summaries["wrn40_2"]
        device = device_info("rpi4")
        base = forward_latency(summary, 50, device, adapts_bn_stats=False,
                               does_backward=False).forward_time_s
        t8, e8, mb8 = quantized_cost(summary, 50, device,
                                     adapts_bn_stats=False,
                                     does_backward=False, bits=8)
        assert t8 < base
        assert mb8 == pytest.approx(summary.total_params / 1e6, rel=1e-6)

    def test_bnopt_benefits_less_than_noadapt(self, full_summaries):
        """Backward stays fp32, so BN-Opt's relative gain is smaller —
        the asymmetry insight iv warns about."""
        from repro.devices import device_info, forward_latency
        summary = full_summaries["wrn40_2"]
        device = device_info("rpi4")

        def relative_gain(adapts, backward):
            base = forward_latency(summary, 50, device,
                                   adapts_bn_stats=adapts,
                                   does_backward=backward).forward_time_s
            t, _, _ = quantized_cost(summary, 50, device,
                                     adapts_bn_stats=adapts,
                                     does_backward=backward, bits=8)
            return (base - t) / base

        assert relative_gain(False, False) > 2 * relative_gain(True, True)

    def test_32_bits_is_identity(self, full_summaries):
        from repro.devices import device_info, forward_latency
        summary = full_summaries["wrn40_2"]
        device = device_info("ultra96")
        base = forward_latency(summary, 50, device, adapts_bn_stats=True,
                               does_backward=False).forward_time_s
        t32, _, _ = quantized_cost(summary, 50, device, adapts_bn_stats=True,
                                   does_backward=False, bits=32)
        assert t32 == pytest.approx(base)

    def test_unsupported_bits(self, full_summaries):
        from repro.devices import device_info
        with pytest.raises(ValueError):
            quantized_cost(full_summaries["wrn40_2"], 50,
                           device_info("rpi4"), adapts_bn_stats=False,
                           does_backward=False, bits=5)


class TestFloat16:
    """Section I's open question: float16 weights (IEEE round trip)."""

    def test_fp16_is_ieee_round_trip(self, rng):
        values = rng.standard_normal(200).astype(np.float32)
        out = quantize_tensor(values, bits=16)
        np.testing.assert_array_equal(
            out, values.astype(np.float16).astype(np.float32))

    def test_fp16_error_below_int8(self, rng):
        values = rng.standard_normal(500).astype(np.float32)
        err16 = np.abs(quantize_tensor(values, 16) - values).mean()
        err8 = np.abs(quantize_tensor(values, 8) - values).mean()
        assert err16 < err8

    def test_fp16_model_predictions_nearly_identical(self, rng):
        model = build_model("wrn40_2", "tiny")
        x = rng.standard_normal((4, 3, 16, 16)).astype(np.float32)
        model.eval()
        with no_grad():
            before = model(Tensor(x)).data
        quantize_model_weights(model, bits=16)
        with no_grad():
            after = model(Tensor(x)).data
        assert np.abs(after - before).max() < 0.05

    def test_fp16_cost_projection(self, full_summaries):
        from repro.devices import device_info, forward_latency
        summary = full_summaries["wrn40_2"]
        device = device_info("xavier_nx_gpu")
        base = forward_latency(summary, 50, device, adapts_bn_stats=False,
                               does_backward=False).forward_time_s
        t16, _, mb16 = quantized_cost(summary, 50, device,
                                      adapts_bn_stats=False,
                                      does_backward=False, bits=16)
        assert t16 < base
        assert mb16 == pytest.approx(summary.total_params * 2 / 1e6,
                                     rel=1e-6)
