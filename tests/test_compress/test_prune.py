"""Pruning: masks, sparsity accounting, structured channel removal."""

import numpy as np
import pytest

from repro import nn
from repro.compress import magnitude_prune, sparsity, structured_channel_prune
from repro.models import build_model
from repro.tensor import Tensor, no_grad


class TestSparsity:
    def test_fresh_model_dense(self):
        assert sparsity(build_model("wrn40_2", "tiny")) < 0.01

    def test_counts_zeros(self):
        model = nn.Sequential(nn.Linear(4, 4, bias=False))
        model[0].weight.data[:] = 0.0
        assert sparsity(model) == 1.0


class TestMagnitudePrune:
    def test_achieves_target(self):
        model = build_model("wrn40_2", "tiny")
        report = magnitude_prune(model, 0.5)
        assert report.achieved_sparsity == pytest.approx(0.5, abs=0.02)
        assert not report.structured

    def test_removes_smallest_weights(self, rng):
        model = nn.Sequential(nn.Linear(10, 10, bias=False))
        weight = model[0].weight
        weight.data = rng.standard_normal((10, 10)).astype(np.float32)
        kept_threshold = np.quantile(np.abs(weight.data), 0.3)
        magnitude_prune(model, 0.3)
        surviving = np.abs(weight.data[weight.data != 0])
        assert surviving.min() >= kept_threshold - 1e-6

    def test_zero_sparsity_noop(self):
        model = build_model("wrn40_2", "tiny")
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        magnitude_prune(model, 0.0)
        for name, p in model.named_parameters():
            np.testing.assert_array_equal(p.data, before[name])

    def test_validation(self):
        model = build_model("wrn40_2", "tiny")
        with pytest.raises(ValueError):
            magnitude_prune(model, 1.0)
        with pytest.raises(ValueError):
            magnitude_prune(model, -0.1)

    def test_no_prunable_layers_raises(self):
        with pytest.raises(ValueError):
            magnitude_prune(nn.Sequential(nn.ReLU()), 0.5)

    def test_model_still_runs(self, rng):
        model = build_model("wrn40_2", "tiny")
        magnitude_prune(model, 0.7)
        model.eval()
        with no_grad():
            out = model(Tensor(rng.standard_normal((2, 3, 16, 16))
                               .astype(np.float32)))
        assert np.isfinite(out.data).all()


class TestStructuredPrune:
    def test_whole_channels_zeroed(self):
        model = build_model("wrn40_2", "tiny")
        report = structured_channel_prune(model, 0.25)
        found_zero_channel = False
        for module in model.modules():
            if isinstance(module, nn.Conv2d):
                channel_norms = np.abs(module.weight.data).reshape(
                    module.weight.data.shape[0], -1).sum(axis=1)
                # norms are non-negative, so min == 0 <=> a pruned channel
                if channel_norms.min() == 0.0:
                    found_zero_channel = True
        assert found_zero_channel
        assert 0.0 < report.mean_channel_sparsity <= 0.30

    def test_at_least_one_channel_survives(self):
        model = nn.Sequential(nn.Conv2d(3, 2, 3, bias=False))
        structured_channel_prune(model, 0.9)
        norms = np.abs(model[0].weight.data).reshape(2, -1).sum(axis=1)
        assert (norms > 0).any()

    def test_mac_factor(self):
        model = build_model("wrn40_2", "tiny")
        report = structured_channel_prune(model, 0.5)
        factor = report.structured_mac_factor()
        assert factor == pytest.approx(1.0 - report.mean_channel_sparsity)
        assert 0.4 < factor < 0.7

    def test_bias_zeroed_with_channel(self, rng):
        model = nn.Sequential(nn.Conv2d(3, 4, 3, bias=True))
        model[0].weight.data = rng.standard_normal(
            model[0].weight.shape).astype(np.float32)
        structured_channel_prune(model, 0.5)
        weight_norms = np.abs(model[0].weight.data).reshape(4, -1).sum(axis=1)
        for channel in np.where(weight_norms == 0)[0]:
            assert model[0].bias.data[channel] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            structured_channel_prune(build_model("wrn40_2", "tiny"), 1.0)
