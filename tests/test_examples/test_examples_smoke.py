"""Examples must stay importable, and the simulation-only ones runnable.

The training-backed examples (quickstart, drone, medical, quantized)
take minutes on a cold cache, so this module only imports them (their
work is main-guarded) and fully executes the two simulation-only ones.
"""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

ALL_EXAMPLES = [
    "quickstart",
    "drone_stream_adaptation",
    "medical_edge_adaptation",
    "codesign_explorer",
    "realtime_budget_planner",
    "quantized_deployment",
]


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_all_examples_exist(self):
        found = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
        assert set(ALL_EXAMPLES) <= found

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_importable_with_main(self, name):
        module = _load(name)
        assert callable(module.main)

    def test_codesign_explorer_runs(self, capsys):
        module = _load("codesign_explorer")
        module.main()
        out = capsys.readouterr().out
        assert "A1" in out and "What-if" in out

    def test_realtime_planner_runs(self, capsys):
        module = _load("realtime_budget_planner")
        module.main()
        out = capsys.readouterr().out
        assert "Sustainable throughput" in out
        assert "Camera at 30 fps" in out

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_examples_have_docstrings(self, name):
        module = _load(name)
        assert module.__doc__ and len(module.__doc__) > 100
