"""Semantics of the fused functional ops (BN, softmax family, losses)."""

import numpy as np
import pytest

from repro.tensor import Tensor
from repro.tensor import functional as F


class TestBatchNormTrain:
    def test_output_is_standardized_before_affine(self, rng):
        x = Tensor(rng.standard_normal((8, 3, 5, 5)) * 4 + 2)
        gamma = Tensor(np.ones(3))
        beta = Tensor(np.zeros(3))
        out, mean, var = F.batch_norm_train(x, gamma, beta)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_returned_stats_match_batch(self, rng):
        data = rng.standard_normal((4, 2, 3, 3))
        _, mean, var = F.batch_norm_train(Tensor(data), Tensor(np.ones(2)),
                                          Tensor(np.zeros(2)))
        np.testing.assert_allclose(mean, data.mean(axis=(0, 2, 3)), rtol=1e-5)
        # returned variance is the unbiased estimator (PyTorch convention)
        np.testing.assert_allclose(var, data.var(axis=(0, 2, 3), ddof=1),
                                   rtol=1e-4)

    def test_affine_applies(self, rng):
        x = Tensor(rng.standard_normal((4, 2, 3, 3)))
        out, _, _ = F.batch_norm_train(x, Tensor(np.array([2.0, 0.5])),
                                       Tensor(np.array([1.0, -1.0])))
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)),
                                   [1.0, -1.0], atol=1e-5)

    def test_grad_only_to_affine_when_x_frozen(self, rng):
        x = Tensor(rng.standard_normal((4, 2, 3, 3)), requires_grad=False)
        gamma = Tensor(np.ones(2), requires_grad=True)
        beta = Tensor(np.zeros(2), requires_grad=True)
        out, _, _ = F.batch_norm_train(x, gamma, beta)
        (out ** 2).sum().backward()
        assert gamma.grad is not None and beta.grad is not None
        assert x.grad is None


class TestBatchNormEval:
    def test_uses_running_stats(self, rng):
        x = rng.standard_normal((4, 2, 3, 3))
        mean = np.array([1.0, -1.0])
        var = np.array([4.0, 0.25])
        out = F.batch_norm_eval(Tensor(x), Tensor(np.ones(2)),
                                Tensor(np.zeros(2)), mean, var, eps=0.0)
        expected = (x - mean[None, :, None, None]) / np.sqrt(var)[None, :, None, None]
        np.testing.assert_allclose(out.data, expected, rtol=1e-5)

    def test_eval_differs_from_train_under_shift(self, rng):
        x = Tensor(rng.standard_normal((8, 2, 4, 4)) + 5.0)  # shifted input
        gamma, beta = Tensor(np.ones(2)), Tensor(np.zeros(2))
        train_out, _, _ = F.batch_norm_train(x, gamma, beta)
        eval_out = F.batch_norm_eval(x, gamma, beta, np.zeros(2), np.ones(2))
        # eval with stale stats leaves the shift in; train removes it
        assert abs(eval_out.data.mean()) > 4.0
        assert abs(train_out.data.mean()) < 1e-4


class TestSoftmaxFamily:
    def test_softmax_sums_to_one(self, rng):
        p = F.softmax(Tensor(rng.standard_normal((6, 9)))).data
        np.testing.assert_allclose(p.sum(axis=-1), 1.0, rtol=1e-5)
        assert (p >= 0).all()

    def test_log_softmax_stability_large_logits(self):
        out = F.log_softmax(Tensor(np.array([[1000.0, 0.0]]))).data
        assert np.isfinite(out).all()

    def test_shift_invariance(self, rng):
        x = rng.standard_normal((3, 4))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, rtol=1e-5)

    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.standard_normal((5, 3))
        targets = rng.integers(0, 3, size=5)
        loss = F.cross_entropy(Tensor(logits), targets).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        manual = -logp[np.arange(5), targets].mean()
        assert loss == pytest.approx(manual, rel=1e-5)

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -50.0)
        logits[0, 1] = 50.0
        logits[1, 2] = 50.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2])).item()
        assert loss < 1e-6


class TestEntropyLoss:
    def test_uniform_gives_log_c(self):
        logits = Tensor(np.zeros((4, 10)))
        assert F.entropy_loss(logits).item() == pytest.approx(np.log(10), rel=1e-5)

    def test_confident_gives_near_zero(self):
        logits = np.full((3, 5), -30.0)
        logits[:, 0] = 30.0
        assert F.entropy_loss(Tensor(logits)).item() < 1e-6

    def test_entropy_decreases_under_gradient_descent(self, rng):
        # The core mechanism of BN-Opt: stepping along -grad of the
        # entropy sharpens predictions.
        logits = Tensor(rng.standard_normal((8, 6)), requires_grad=True)
        before = F.entropy_loss(logits)
        before.backward()
        stepped = Tensor(logits.data - 0.5 * logits.grad)
        after = F.entropy_loss(stepped)
        assert after.item() < before.item()


class TestAccuracy:
    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert F.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_accepts_tensor(self):
        logits = Tensor(np.array([[1.0, 0.0]]))
        assert F.accuracy(logits, np.array([0])) == 1.0
