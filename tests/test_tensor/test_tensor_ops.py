"""Unit tests for basic Tensor arithmetic, shapes, and graph mechanics."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor.tensor import concatenate, tensor


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert not t.requires_grad

    def test_int_data_becomes_float(self):
        t = Tensor(np.arange(4))
        assert t.dtype.kind == "f"

    def test_from_tensor_shares_data(self):
        a = Tensor(np.ones(3))
        b = Tensor(a)
        assert b.data is a.data

    def test_tensor_helper_dtype(self):
        t = tensor([1, 2], dtype=np.float64)
        assert t.dtype == np.float64

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor(np.ones(2), requires_grad=True))

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2


class TestArithmetic:
    def test_add(self, rng):
        a, b = rng.standard_normal(5), rng.standard_normal(5)
        out = Tensor(a) + Tensor(b)
        np.testing.assert_allclose(out.data, a + b)

    def test_add_scalar_and_radd(self):
        out = 2.0 + Tensor(np.ones(3))
        np.testing.assert_allclose(out.data, 3.0)

    def test_sub_and_rsub(self):
        t = Tensor(np.full(3, 2.0))
        np.testing.assert_allclose((t - 1.0).data, 1.0)
        np.testing.assert_allclose((5.0 - t).data, 3.0)

    def test_mul_div(self, rng):
        a, b = rng.standard_normal(4) + 3, rng.standard_normal(4) + 3
        np.testing.assert_allclose((Tensor(a) * Tensor(b)).data, a * b)
        np.testing.assert_allclose((Tensor(a) / Tensor(b)).data, a / b, rtol=1e-6)

    def test_pow(self):
        t = Tensor(np.array([2.0, 3.0]))
        np.testing.assert_allclose((t ** 2).data, [4.0, 9.0])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor(np.ones(2))).data, -1.0)

    def test_broadcasting_add_grad_unbroadcasts(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, 3.0)

    def test_matmul(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 5))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b, rtol=1e-6)


class TestShapes:
    def test_reshape_roundtrip_grad(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(6))

    def test_reshape_accepts_tuple(self):
        assert Tensor(np.zeros(6)).reshape((2, 3)).shape == (2, 3)

    def test_transpose_default_reverses(self):
        assert Tensor(np.zeros((2, 3, 4))).transpose().shape == (4, 3, 2)

    def test_transpose_axes_grad(self, rng):
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        (a.transpose(1, 0) * Tensor(rng.standard_normal((3, 2)))).sum().backward()
        assert a.grad.shape == (2, 3)

    def test_flatten(self):
        assert Tensor(np.zeros((2, 3, 4))).flatten().shape == (2, 12)

    def test_getitem_grad_scatters(self):
        a = Tensor(np.arange(5.0), requires_grad=True)
        a[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 0.0, 1.0, 0.0, 0.0])

    def test_pad2d(self):
        a = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        padded = a.pad2d((1, 2))
        assert padded.shape == (1, 1, 4, 6)
        padded.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((1, 1, 2, 2)))

    def test_pad2d_zero_is_identity(self):
        a = Tensor(np.ones((1, 1, 2, 2)))
        assert a.pad2d((0, 0)) is a

    def test_concatenate_grad_routes_to_parts(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, 2.0)
        np.testing.assert_allclose(b.grad, 2.0)


class TestReductions:
    def test_sum_axis_keepdims(self, rng):
        a = rng.standard_normal((3, 4))
        out = Tensor(a).sum(axis=1, keepdims=True)
        np.testing.assert_allclose(out.data, a.sum(axis=1, keepdims=True), rtol=1e-6)

    def test_mean_matches_numpy(self, rng):
        a = rng.standard_normal((2, 3, 4))
        np.testing.assert_allclose(Tensor(a).mean(axis=(0, 2)).data,
                                   a.mean(axis=(0, 2)), rtol=1e-5)

    def test_max_grad_goes_to_argmax(self):
        a = Tensor(np.array([1.0, 5.0, 3.0]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_max_ties_split_gradient(self):
        a = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5])


class TestGraphMechanics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(1)).backward()

    def test_backward_nonscalar_needs_grad_arg(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_with_explicit_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2).backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(t.grad, [2.0, 4.0, 6.0])

    def test_diamond_fanin_sums(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * 2.0
        z = (y + y * y).sum()   # dz/dx = 2 + 2*(2x)*2 ... = 2 + 8x... wait
        z.backward()
        # z = 2x + 4x^2, dz/dx = 2 + 8x = 26 at x=3
        np.testing.assert_allclose(x.grad, [26.0])

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2).sum().backward()
        (x * 3).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_zero_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError()
        assert is_grad_enabled()

    def test_detach(self):
        x = Tensor(np.ones(2), requires_grad=True)
        d = (x * 2).detach()
        assert not d.requires_grad

    def test_item(self):
        assert Tensor(np.array([[2.5]])).item() == 2.5

    def test_deep_chain_no_recursion_error(self):
        # Topological sort is iterative; a 5000-op chain must not blow the
        # Python recursion limit.
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])
