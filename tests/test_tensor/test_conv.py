"""Convolution/pooling semantics against naive reference implementations."""

import numpy as np
import pytest

from repro.tensor import Tensor
from repro.tensor import conv as C


def naive_conv2d(x, w, b=None, stride=1, padding=0, groups=1):
    """Direct 6-loop convolution used as a ground-truth oracle."""
    n, c, h, wdt = x.shape
    co, cig, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    ho = (h + 2 * padding - kh) // stride + 1
    wo = (wdt + 2 * padding - kw) // stride + 1
    out = np.zeros((n, co, ho, wo))
    cog = co // groups
    for img in range(n):
        for oc in range(co):
            g = oc // cog
            for y in range(ho):
                for xo in range(wo):
                    patch = xp[img, g * cig:(g + 1) * cig,
                               y * stride:y * stride + kh,
                               xo * stride:xo * stride + kw]
                    out[img, oc, y, xo] = (patch * w[oc]).sum()
    if b is not None:
        out += b.reshape(1, co, 1, 1)
    return out


class TestConvCorrectness:
    @pytest.mark.parametrize("stride,padding,groups,channels,out_channels", [
        (1, 0, 1, 3, 5),
        (2, 1, 1, 4, 6),
        (1, 1, 2, 4, 6),
        (2, 2, 1, 2, 3),
        (1, 0, 4, 4, 8),
        (1, 1, 6, 6, 6),   # depthwise
    ])
    def test_matches_naive(self, rng, stride, padding, groups, channels,
                           out_channels):
        x = rng.standard_normal((2, channels, 7, 7))
        w = rng.standard_normal((out_channels, channels // groups, 3, 3))
        b = rng.standard_normal(out_channels)
        ours = C.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride,
                        padding=padding, groups=groups).data
        reference = naive_conv2d(x, w, b, stride, padding, groups)
        np.testing.assert_allclose(ours, reference, rtol=1e-5, atol=1e-7)

    def test_rectangular_kernel(self, rng):
        x = rng.standard_normal((1, 2, 6, 8))
        w = rng.standard_normal((3, 2, 1, 3))
        ours = C.conv2d(Tensor(x), Tensor(w), None, padding=0).data
        assert ours.shape == (1, 3, 6, 6)

    def test_1x1_conv_is_channel_matmul(self, rng):
        x = rng.standard_normal((2, 4, 5, 5))
        w = rng.standard_normal((6, 4, 1, 1))
        ours = C.conv2d(Tensor(x), Tensor(w), None).data
        reference = np.einsum("oc,nchw->nohw", w[:, :, 0, 0], x)
        np.testing.assert_allclose(ours, reference, rtol=1e-5)

    def test_channel_group_mismatch_raises(self, rng):
        x = Tensor(rng.standard_normal((1, 3, 4, 4)))
        w = Tensor(rng.standard_normal((4, 2, 3, 3)))
        with pytest.raises(ValueError):
            C.conv2d(x, w, None, groups=2)

    def test_wrong_weight_in_channels_raises(self, rng):
        x = Tensor(rng.standard_normal((1, 4, 4, 4)))
        w = Tensor(rng.standard_normal((4, 3, 3, 3)))
        with pytest.raises(ValueError):
            C.conv2d(x, w, None)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = C.max_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_max_pool_with_stride(self, rng):
        x = rng.standard_normal((1, 1, 6, 6))
        out = C.max_pool2d(Tensor(x), 2, stride=1).data
        assert out.shape == (1, 1, 5, 5)
        assert out[0, 0, 0, 0] == x[0, 0, :2, :2].max()

    def test_avg_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = C.avg_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((3, 4, 5, 5))
        np.testing.assert_allclose(C.global_avg_pool2d(Tensor(x)).data,
                                   x.mean(axis=(2, 3)), rtol=1e-5)
