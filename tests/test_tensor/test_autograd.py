"""Finite-difference gradient verification of every differentiable op."""

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck
from repro.tensor import conv as C
from repro.tensor import functional as F
from repro.tensor.tensor import concatenate


def t64(rng, *shape, scale=1.0):
    return Tensor(rng.standard_normal(shape) * scale, requires_grad=True)


class TestElementwiseGrads:
    def test_add_mul(self, rng):
        a, b = t64(rng, 3, 4), t64(rng, 3, 4)
        gradcheck(lambda a, b: (a * b + a).sum(), [a, b])

    def test_div(self, rng):
        a = t64(rng, 4)
        b = Tensor(rng.standard_normal(4) + 3.0, requires_grad=True)
        gradcheck(lambda a, b: (a / b).sum(), [a, b])

    def test_pow(self, rng):
        a = Tensor(np.abs(rng.standard_normal(5)) + 0.5, requires_grad=True)
        gradcheck(lambda a: (a ** 3).sum(), [a])

    def test_exp_log(self, rng):
        a = Tensor(np.abs(rng.standard_normal(4)) + 0.5, requires_grad=True)
        gradcheck(lambda a: (a.log() * a.exp()).sum(), [a])

    def test_sigmoid_tanh(self, rng):
        a = t64(rng, 6)
        gradcheck(lambda a: (a.sigmoid() + a.tanh()).sum(), [a])

    def test_relu(self, rng):
        # keep values away from the kink
        a = Tensor(rng.standard_normal(8) + np.sign(rng.standard_normal(8)) * 0.5,
                   requires_grad=True)
        gradcheck(lambda a: (a.relu() * 2.0).sum(), [a])

    def test_clip(self, rng):
        a = Tensor(np.array([-2.0, -0.5, 0.5, 2.0, 7.0]), requires_grad=True)
        gradcheck(lambda a: (a.clip(0.0, 6.0) ** 2).sum(), [a])

    def test_broadcast_grad(self, rng):
        a, b = t64(rng, 3, 4), t64(rng, 4)
        gradcheck(lambda a, b: ((a + b) * b).sum(), [a, b])


class TestLinalgGrads:
    def test_matmul(self, rng):
        a, b = t64(rng, 3, 4), t64(rng, 4, 2)
        gradcheck(lambda a, b: (a @ b).sum(), [a, b])

    def test_transpose_then_matmul(self, rng):
        a, b = t64(rng, 4, 3), t64(rng, 4, 2)
        gradcheck(lambda a, b: (a.transpose() @ b).sum(), [a, b])


class TestReductionGrads:
    def test_sum_mean(self, rng):
        a = t64(rng, 3, 5)
        gradcheck(lambda a: (a.sum(axis=0) * a.mean(axis=0)).sum(), [a])

    def test_max_axis(self, rng):
        a = Tensor(rng.permutation(12).reshape(3, 4).astype(float),
                   requires_grad=True)
        gradcheck(lambda a: a.max(axis=1).sum(), [a])


class TestConvGrads:
    @pytest.mark.parametrize("stride,padding,groups", [
        (1, 0, 1), (2, 1, 1), (1, 1, 2), (2, 0, 4),
    ])
    def test_conv2d(self, rng, stride, padding, groups):
        x = t64(rng, 2, 4, 5, 5)
        w = t64(rng, 4, 4 // groups, 3, 3)
        b = t64(rng, 4)
        gradcheck(lambda x, w, b: (C.conv2d(x, w, b, stride=stride,
                                            padding=padding,
                                            groups=groups) ** 2).sum(),
                  [x, w, b])

    def test_depthwise_conv(self, rng):
        x = t64(rng, 1, 3, 4, 4)
        w = t64(rng, 3, 1, 3, 3)
        gradcheck(lambda x, w: (C.conv2d(x, w, None, padding=1,
                                         groups=3) ** 2).sum(), [x, w])

    def test_max_pool(self, rng):
        x = Tensor(rng.permutation(2 * 2 * 16).reshape(2, 2, 4, 4).astype(float),
                   requires_grad=True)
        gradcheck(lambda x: (C.max_pool2d(x, 2) ** 2).sum(), [x])

    def test_avg_pool_overlapping_stride(self, rng):
        x = t64(rng, 1, 2, 6, 6)
        gradcheck(lambda x: (C.avg_pool2d(x, 3, stride=3) ** 2).sum(), [x])

    def test_global_avg_pool(self, rng):
        x = t64(rng, 2, 3, 4, 4)
        gradcheck(lambda x: (C.global_avg_pool2d(x) ** 2).sum(), [x])


class TestFunctionalGrads:
    def test_batch_norm_train(self, rng):
        x = t64(rng, 4, 3, 3, 3)
        g = Tensor(rng.standard_normal(3) + 1.5, requires_grad=True)
        b = t64(rng, 3)
        gradcheck(lambda x, g, b: (F.batch_norm_train(x, g, b)[0] ** 3).sum(),
                  [x, g, b], atol=5e-4)

    def test_batch_norm_eval(self, rng):
        x = t64(rng, 3, 2, 3, 3)
        g = Tensor(rng.standard_normal(2) + 1.5, requires_grad=True)
        b = t64(rng, 2)
        mean = rng.standard_normal(2)
        var = np.abs(rng.standard_normal(2)) + 0.5
        gradcheck(lambda x, g, b: (F.batch_norm_eval(x, g, b, mean, var) ** 2).sum(),
                  [x, g, b])

    def test_log_softmax(self, rng):
        x = t64(rng, 4, 6)
        gradcheck(lambda x: (x * F.log_softmax(x)).sum(), [x])

    def test_softmax(self, rng):
        x = t64(rng, 3, 5)
        w = rng.standard_normal((3, 5))
        gradcheck(lambda x: (F.softmax(x) * Tensor(w)).sum(), [x])

    def test_cross_entropy(self, rng):
        x = t64(rng, 6, 4)
        targets = rng.integers(0, 4, size=6)
        gradcheck(lambda x: F.cross_entropy(x, targets), [x])

    def test_entropy_loss(self, rng):
        x = t64(rng, 5, 7)
        gradcheck(lambda x: F.entropy_loss(x), [x])

    def test_concatenate(self, rng):
        a, b = t64(rng, 2, 3), t64(rng, 4, 3)
        gradcheck(lambda a, b: (concatenate([a, b], axis=0) ** 2).sum(), [a, b])

    def test_gradcheck_rejects_nonscalar(self, rng):
        a = t64(rng, 3)
        with pytest.raises(ValueError):
            gradcheck(lambda a: a * 2.0, [a])

    def test_gradcheck_detects_wrong_gradient(self, rng):
        # A function whose op has a deliberately broken backward is
        # simulated by comparing against mismatched analytic grads.
        a = t64(rng, 3)

        def wrong(a):
            out = a * 2.0
            out.data = a.data * 3.0  # value inconsistent with graph
            return out.sum()

        with pytest.raises(AssertionError):
            gradcheck(wrong, [a])
