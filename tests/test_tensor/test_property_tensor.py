"""Property-based tests (hypothesis) for the autograd engine invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays, array_shapes

from repro.tensor import Tensor
from repro.tensor import functional as F

finite_floats = st.floats(min_value=-10.0, max_value=10.0,
                          allow_nan=False, allow_infinity=False, width=32)


def small_arrays(max_dims=3, max_side=5):
    return arrays(np.float64,
                  array_shapes(min_dims=1, max_dims=max_dims,
                               min_side=1, max_side=max_side),
                  elements=finite_floats)


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_add_commutative(a):
    x, y = Tensor(a), Tensor(a[::-1].copy())
    np.testing.assert_allclose((x + y).data, (y + x).data)


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_mul_by_one_identity(a):
    np.testing.assert_allclose((Tensor(a) * 1.0).data, a)


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_relu_idempotent_and_nonnegative(a):
    once = Tensor(a).relu()
    twice = once.relu()
    assert (once.data >= 0).all()
    np.testing.assert_allclose(once.data, twice.data)


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_sum_grad_is_ones(a):
    t = Tensor(a, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(a))


@given(small_arrays(max_dims=2))
@settings(max_examples=40, deadline=None)
def test_reshape_preserves_sum_and_grad_shape(a):
    t = Tensor(a, requires_grad=True)
    flat = t.reshape(-1)
    assert flat.data.sum() == float(np.sum(a)) or np.isclose(flat.data.sum(), a.sum())
    flat.sum().backward()
    assert t.grad.shape == a.shape


@given(arrays(np.float64, st.tuples(st.integers(1, 6), st.integers(2, 8)),
              elements=finite_floats))
@settings(max_examples=40, deadline=None)
def test_softmax_is_distribution(logits):
    p = F.softmax(Tensor(logits)).data
    assert (p >= 0).all()
    np.testing.assert_allclose(p.sum(axis=-1), 1.0, atol=1e-6)


@given(arrays(np.float64, st.tuples(st.integers(1, 6), st.integers(2, 8)),
              elements=finite_floats))
@settings(max_examples=40, deadline=None)
def test_entropy_bounds(logits):
    num_classes = logits.shape[-1]
    h = F.entropy_loss(Tensor(logits)).item()
    assert -1e-6 <= h <= np.log(num_classes) + 1e-6


@given(arrays(np.float64, st.tuples(st.integers(2, 6), st.integers(1, 3),
                                    st.integers(2, 4), st.integers(2, 4)),
              elements=finite_floats))
@settings(max_examples=30, deadline=None)
def test_batch_norm_standardizes_any_batch(x):
    channels = x.shape[1]
    # skip degenerate constant channels (zero variance)
    if np.any(x.var(axis=(0, 2, 3)) < 1e-8):
        return
    out, _, _ = F.batch_norm_train(Tensor(x), Tensor(np.ones(channels)),
                                   Tensor(np.zeros(channels)))
    np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)


@given(small_arrays(max_dims=2), finite_floats)
@settings(max_examples=40, deadline=None)
def test_linearity_of_gradient(a, scale):
    t1 = Tensor(a, requires_grad=True)
    (t1.sum() * float(scale)).backward()
    t2 = Tensor(a, requires_grad=True)
    t2.sum().backward()
    np.testing.assert_allclose(t1.grad, np.asarray(t2.grad) * np.float64(scale),
                               rtol=1e-5, atol=1e-6)
