"""Fixtures for the resilience suite.

``journal_dir`` honours ``$REPRO_JOURNAL_DIR`` so CI can collect the
journals written by a failing run as build artifacts; locally it falls
back to pytest's tmp_path.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest


@pytest.fixture
def journal_dir(tmp_path, request):
    root = os.environ.get("REPRO_JOURNAL_DIR")
    if not root:
        return tmp_path
    safe = re.sub(r"[^A-Za-z0-9_.-]", "_", request.node.name)
    path = Path(root) / safe
    path.mkdir(parents=True, exist_ok=True)
    return path
