"""Pretrain disk cache: checksum verification and retrain fallback."""

import numpy as np
import pytest

from repro.train import trainer as trainer_mod
from repro.train.trainer import (_CHECKSUM_KEY, _read_disk_cache,
                                 _state_checksum, _write_disk_cache,
                                 pretrain_robust)

TINY = dict(image_size=8, train_samples=48, epochs=1, seed=0)


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Isolated disk cache plus a fresh in-memory cache per test."""
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
    monkeypatch.setattr(trainer_mod, "_MEMORY_CACHE", {})
    return tmp_path


def cache_file(cache_dir):
    files = sorted(cache_dir.glob("robust_*.npz"))
    assert len(files) == 1
    return files[0]


def forbid_training(monkeypatch):
    def fit(self, dataset, val=None):
        raise AssertionError("retrained when the disk cache should serve")
    monkeypatch.setattr(trainer_mod.Trainer, "fit", fit)


def count_training(monkeypatch):
    calls = {"n": 0}
    original = trainer_mod.Trainer.fit

    def fit(self, dataset, val=None):
        calls["n"] += 1
        return original(self, dataset, val)

    monkeypatch.setattr(trainer_mod.Trainer, "fit", fit)
    return calls


class TestRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        state = {"w": np.arange(6, dtype=np.float32).reshape(2, 3),
                 "b": np.zeros(3, dtype=np.float32)}
        target = tmp_path / "weights.npz"
        _write_disk_cache(target, state)
        restored = _read_disk_cache(target)
        assert restored is not None
        assert sorted(restored) == ["b", "w"]
        for name in state:
            np.testing.assert_array_equal(restored[name], state[name])

    def test_checksum_covers_names_shapes_and_bytes(self):
        base = {"w": np.ones((2, 2), dtype=np.float32)}
        renamed = {"v": np.ones((2, 2), dtype=np.float32)}
        reshaped = {"w": np.ones(4, dtype=np.float32)}
        perturbed = {"w": np.full((2, 2), 1.0 + 1e-7, dtype=np.float32)}
        digests = {_state_checksum(s)
                   for s in (base, renamed, reshaped, perturbed)}
        assert len(digests) == 4

    def test_disk_cache_serves_without_retraining(self, cache_dir,
                                                  monkeypatch):
        trained = pretrain_robust("wrn40_2", **TINY)
        assert cache_file(cache_dir).exists()

        # a "new process": empty memory cache, training forbidden
        monkeypatch.setattr(trainer_mod, "_MEMORY_CACHE", {})
        forbid_training(monkeypatch)
        cached = pretrain_robust("wrn40_2", **TINY)
        for key, value in trained.state_dict().items():
            np.testing.assert_array_equal(value, cached.state_dict()[key])


class TestCorruptionFallback:
    def test_truncated_archive_triggers_retrain_and_clean_rewrite(
            self, cache_dir, monkeypatch):
        pretrain_robust("wrn40_2", **TINY)
        target = cache_file(cache_dir)
        target.write_bytes(target.read_bytes()[:100])   # torn write

        monkeypatch.setattr(trainer_mod, "_MEMORY_CACHE", {})
        calls = count_training(monkeypatch)
        model = pretrain_robust("wrn40_2", **TINY)
        assert calls["n"] == 1                          # retrained once
        assert model is not None
        # and the rewrite left a verifiable archive behind
        assert _read_disk_cache(cache_file(cache_dir)) is not None

    def test_tampered_weights_with_stale_checksum_rejected(
            self, cache_dir, monkeypatch):
        pretrain_robust("wrn40_2", **TINY)
        target = cache_file(cache_dir)
        with np.load(target) as archive:
            payload = {name: archive[name] for name in archive.files}
        tampered_name = next(n for n in payload if n != _CHECKSUM_KEY)
        payload[tampered_name] = payload[tampered_name] + 1.0
        np.savez_compressed(target, **payload)          # checksum now stale

        monkeypatch.setattr(trainer_mod, "_MEMORY_CACHE", {})
        calls = count_training(monkeypatch)
        pretrain_robust("wrn40_2", **TINY)
        assert calls["n"] == 1
        assert not target.exists() or \
            _read_disk_cache(cache_file(cache_dir)) is not None

    def test_legacy_archive_without_checksum_rejected(self, cache_dir,
                                                      monkeypatch):
        pretrain_robust("wrn40_2", **TINY)
        target = cache_file(cache_dir)
        with np.load(target) as archive:
            payload = {name: archive[name] for name in archive.files
                       if name != _CHECKSUM_KEY}
        np.savez_compressed(target, **payload)          # pre-checksum format

        monkeypatch.setattr(trainer_mod, "_MEMORY_CACHE", {})
        calls = count_training(monkeypatch)
        pretrain_robust("wrn40_2", **TINY)
        assert calls["n"] == 1

    def test_unusable_cache_file_is_removed(self, cache_dir, monkeypatch):
        pretrain_robust("wrn40_2", **TINY)
        target = cache_file(cache_dir)
        target.write_bytes(b"not a zip archive at all")
        assert _read_disk_cache(target) is None
        assert not target.exists()
