"""Atomic write helpers: all-or-nothing semantics for every artifact."""

import os

import numpy as np
import pytest

from repro.core import io as study_io
from repro.core.records import MeasurementRecord, StudyResult
from repro.resilience.atomic import (atomic_path, atomic_write_bytes,
                                     atomic_write_text)


def sample_result():
    return StudyResult([MeasurementRecord(
        model="wrn40_2", method="bn_norm", batch_size=50, device="rpi4",
        error_pct=15.2, forward_time_s=2.6, energy_j=6.0)])


class TestAtomicWrite:
    def test_creates_and_replaces(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "first")
        assert target.read_text() == "first"
        atomic_write_text(target, "second")
        assert target.read_text() == "second"

    def test_no_temp_litter_on_success(self, tmp_path):
        atomic_write_bytes(tmp_path / "out.bin", b"payload")
        assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]

    def test_failed_replace_preserves_original(self, tmp_path, monkeypatch):
        target = tmp_path / "out.txt"
        target.write_text("original")
        monkeypatch.setattr(os, "replace",
                            lambda *a: (_ for _ in ()).throw(OSError("disk")))
        with pytest.raises(OSError):
            atomic_write_text(target, "clobber")
        assert target.read_text() == "original"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_atomic_path_cleans_up_on_writer_failure(self, tmp_path):
        target = tmp_path / "weights.npz"
        target.write_bytes(b"keep me")
        with pytest.raises(RuntimeError):
            with atomic_path(target, suffix=".npz") as tmp:
                tmp.write_bytes(b"partial")
                raise RuntimeError("writer died")
        assert target.read_bytes() == b"keep me"
        assert [p.name for p in tmp_path.iterdir()] == ["weights.npz"]


class TestAtomicArtifacts:
    def test_save_json_failure_keeps_previous_file(self, tmp_path,
                                                   monkeypatch):
        target = tmp_path / "study.json"
        study_io.save_json(sample_result(), target)
        before = target.read_text()
        monkeypatch.setattr(os, "replace",
                            lambda *a: (_ for _ in ()).throw(OSError("disk")))
        with pytest.raises(OSError):
            study_io.save_json(StudyResult([]), target)
        assert target.read_text() == before

    def test_save_csv_is_atomic_and_loadable(self, tmp_path):
        target = tmp_path / "study.csv"
        study_io.save_csv(sample_result(), target)
        assert len(study_io.load_csv(target)) == 1
        assert [p.name for p in tmp_path.iterdir()] == ["study.csv"]

    def test_save_checkpoint_appends_npz_and_leaves_no_temp(self, tmp_path):
        from repro.models import build_model
        from repro.models.checkpoints import load_checkpoint, save_checkpoint

        model = build_model("wrn40_2", "tiny")
        save_checkpoint(model, tmp_path / "ckpt", model_name="wrn40_2",
                        profile="tiny")
        assert (tmp_path / "ckpt.npz").exists()
        assert [p.name for p in tmp_path.iterdir()] == ["ckpt.npz"]
        rebuilt = load_checkpoint(tmp_path / "ckpt.npz")
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(value, rebuilt.state_dict()[key])
