"""End-to-end crash/resume: the native runner survives its own death.

Two interruption modes are simulated mid-sweep against the real
``run_native_study`` grid:

- an *exception* inside a cell (the executor isolates it, journals the
  traceback, and the sweep continues);
- a *hard kill* (a BaseException tears the whole run down and a partial
  line is appended to the journal, exactly what a SIGKILL mid-append
  leaves behind).

In both cases a resumed run with the same config + journal must skip
every completed cell, re-run only the missing ones, and merge to the
same records as an uninterrupted run (wall-clock timing aside).
"""

import math

import pytest

from repro.core import io as study_io
from repro.core.config import StudyConfig
from repro.core.runner import run_native_study
from repro.data.stream import CorruptionStream
from repro.resilience.journal import scan_journal


class _HardKill(BaseException):
    """Stands in for SIGKILL: not an Exception, so nothing isolates it."""


def study_config(**overrides):
    base = dict(models=("wrn40_2",), methods=("no_adapt", "bn_norm"),
                batch_sizes=(50,), corruptions=("fog", "gaussian_noise"),
                image_size=16, stream_samples=150)
    base.update(overrides)
    return StudyConfig(**base)


def strip_timing(result):
    """Canonical form for comparison across separate executions:
    wall-clock timing and attempt counts are all that may legitimately
    differ, and JSON encoding makes NaN fields (NaN != NaN) comparable."""
    return study_io.canonical_dumps(result, strip_timing=True)


@pytest.fixture
def models(micro_trained_model):
    model, _ = micro_trained_model
    return {"wrn40_2": model}


@pytest.fixture(scope="module")
def baseline(request):
    """An uninterrupted run of the same grid, no journal."""
    model, _ = request.getfixturevalue("micro_trained_model")
    return run_native_study(study_config(), models={"wrn40_2": model})


class _FlakyBatches:
    """Patchable CorruptionStream.batches that raises on chosen calls."""

    def __init__(self, monkeypatch, raise_on=(), error=RuntimeError):
        self.calls = 0
        self.raise_on = set(raise_on)
        self.error = error
        self.original = CorruptionStream.batches

        def batches(stream, batch_size, drop_last=True):
            self.calls += 1
            if self.calls in self.raise_on:
                raise self.error(f"injected failure on call {self.calls}")
            return self.original(stream, batch_size, drop_last)

        monkeypatch.setattr(CorruptionStream, "batches", batches)

    def heal(self):
        self.raise_on.clear()


class TestExceptionMidSweep:
    def test_failed_cell_then_resume_matches_uninterrupted(
            self, tmp_path, journal_dir, monkeypatch, models, baseline):
        journal = journal_dir / "exception.jsonl"
        flaky = _FlakyBatches(monkeypatch, raise_on={3})  # 2nd cell, 1st stream
        config = study_config(journal=str(journal))
        interrupted = run_native_study(config, models=models)

        # the sweep continued: both cells produced a record, one failed
        assert [r.status for r in interrupted] == ["ok", "failed"]
        failed = interrupted.records[1]
        assert failed.method == "bn_norm" and math.isnan(failed.error_pct)

        # the journal is readable and carries the failed cell's traceback
        failures = scan_journal(journal).failed_cells()
        assert set(failures) == {"wrn40_2/bn_norm/50"}
        assert "injected failure on call 3" in failures[
            "wrn40_2/bn_norm/50"]["traceback"]

        # heal the fault and resume: only the failed cell re-runs
        flaky.heal()
        calls_before = flaky.calls
        resumed = run_native_study(
            study_config(journal=str(journal), resume=True), models=models)
        assert flaky.calls - calls_before == 2     # one cell x two streams
        assert [r.status for r in resumed] == ["ok", "ok"]

        # no duplicate cells, and identical records modulo wall time
        assert len(resumed) == len(baseline)
        assert strip_timing(resumed) == strip_timing(baseline)

    def test_retry_recovers_transient_fault_in_one_run(
            self, journal_dir, monkeypatch, models, baseline):
        journal = journal_dir / "retry.jsonl"
        # fail the second cell's first attempt only (call 3); attempt 2
        # re-pulls both of that cell's streams (calls 4-5) and succeeds
        _FlakyBatches(monkeypatch, raise_on={3})
        config = study_config(journal=str(journal), max_retries=1)
        result = run_native_study(config, models=models)
        assert [r.status for r in result] == ["ok", "ok"]
        assert [r.attempts for r in result] == [1, 2]
        assert strip_timing(result) == strip_timing(baseline)


class TestHardKillMidSweep:
    def test_kill_plus_truncated_journal_then_resume(
            self, journal_dir, monkeypatch, models, baseline):
        journal = journal_dir / "hardkill.jsonl"
        flaky = _FlakyBatches(monkeypatch, raise_on={3}, error=_HardKill)
        config = study_config(journal=str(journal))
        with pytest.raises(_HardKill):
            run_native_study(config, models=models)

        # simulate the kill landing mid-append: partial trailing line
        with open(journal, "ab") as handle:
            handle.write(b'{"event":"cell_ok","cell":"wrn40_2/bn_norm/5')
        scan = scan_journal(journal)
        assert scan.truncated
        assert set(scan.completed_cells()) == {"wrn40_2/no_adapt/50"}

        # a fresh process (fresh journal object) resumes past the wreck
        flaky.heal()
        calls_before = flaky.calls
        resumed = run_native_study(
            study_config(journal=str(journal), resume=True), models=models)
        assert flaky.calls - calls_before == 2     # completed cell skipped
        assert [r.status for r in resumed] == ["ok", "ok"]
        assert len(resumed) == len(baseline)       # no duplicate cells
        assert strip_timing(resumed) == strip_timing(baseline)
        events = [e["event"] for e in scan_journal(journal).entries]
        assert "run_resume" in events and events[-1] == "run_end"


class TestReplayDeterminism:
    def test_fully_journaled_run_replays_bit_identically(
            self, journal_dir, models):
        journal = journal_dir / "replay.jsonl"
        first = run_native_study(study_config(journal=str(journal)),
                                 models=models)
        replayed = run_native_study(
            study_config(journal=str(journal), resume=True), models=models)
        # same journal -> bit-identical merged StudyResult, timing included
        assert study_io.dumps(replayed) == study_io.dumps(first)

    def test_resume_refuses_a_different_config(self, journal_dir, models):
        journal = journal_dir / "fingerprint.jsonl"
        run_native_study(study_config(journal=str(journal)), models=models)
        other = study_config(journal=str(journal), resume=True, seed=99)
        with pytest.raises(ValueError, match="different study"):
            run_native_study(other, models=models)


class TestZeroSampleStream:
    def test_stream_shorter_than_batch_yields_nan_not_crash(self, models):
        config = study_config(methods=("no_adapt",), stream_samples=30)
        result = run_native_study(config, models=models)
        record = result.one("wrn40_2", "no_adapt", 50)
        assert record.status == "ok"
        assert math.isnan(record.error_pct)
        # and the NaN error survives the JSON round trip as null
        restored = study_io.loads(study_io.dumps(result))
        assert math.isnan(restored.records[0].error_pct)

    def test_mixed_empty_and_real_streams_average_the_real_ones(
            self, models, monkeypatch):
        # empty out only the first stream: its NaN must not poison the
        # aggregate over the streams that did produce samples
        original = CorruptionStream.batches
        calls = {"n": 0}

        def batches(stream, batch_size, drop_last=True):
            calls["n"] += 1
            if calls["n"] == 1:
                return iter(())
            return original(stream, batch_size, drop_last)

        monkeypatch.setattr(CorruptionStream, "batches", batches)
        config = study_config(methods=("no_adapt",))
        result = run_native_study(config, models=models)
        record = result.one("wrn40_2", "no_adapt", 50)
        assert record.status == "ok"
        assert not math.isnan(record.error_pct)
