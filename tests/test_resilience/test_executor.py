"""ResilientExecutor: isolation, watchdog, retries, resume replay."""

import math
import time

import pytest

from repro.core import io as study_io
from repro.core.records import MeasurementRecord
from repro.resilience.executor import (CellSpec, CellTimeoutError,
                                       ResilientExecutor)
from repro.resilience.journal import RunJournal, scan_journal


def spec(key):
    return CellSpec(key=key, model="wrn40_2", method="bn_norm",
                    batch_size=50, backend="numpy")


def ok_record(s, value=10.0):
    return MeasurementRecord(
        model=s.model, method=s.method, batch_size=s.batch_size,
        device=s.device, error_pct=value, forward_time_s=0.25,
        energy_j=float("nan"), backend=s.backend)


def make_cells(n=3, failing=None, fail_times=None):
    """n cells; ``failing`` raises forever (or ``fail_times`` times)."""
    calls = {}
    remaining = dict(fail_times or {})

    def make(key):
        s = spec(key)

        def fn():
            calls[key] = calls.get(key, 0) + 1
            if key == failing:
                if remaining.get(key, math.inf) > 0:
                    remaining[key] = remaining.get(key, math.inf) - 1
                    raise ValueError(f"cell {key} exploded")
            return [ok_record(s)]
        return s, fn

    return [make(f"c{i}") for i in range(n)], calls


class TestIsolation:
    def test_failing_cell_does_not_stop_the_sweep(self):
        cells, calls = make_cells(3, failing="c1")
        result = ResilientExecutor().run(cells)
        assert len(result) == 3
        statuses = [r.status for r in result]
        assert statuses == ["ok", "failed", "ok"]
        assert calls == {"c0": 1, "c1": 1, "c2": 1}

    def test_failed_record_carries_grid_point_and_nan_costs(self):
        cells, _ = make_cells(2, failing="c0")
        failed = ResilientExecutor().run(cells).records[0]
        assert (failed.model, failed.method, failed.batch_size) == \
            ("wrn40_2", "bn_norm", 50)
        assert math.isnan(failed.error_pct)
        assert math.isnan(failed.forward_time_s)
        assert failed.status == "failed" and failed.attempts == 1

    def test_traceback_journaled(self, journal_dir):
        path = journal_dir / "isolation.jsonl"
        cells, _ = make_cells(2, failing="c1")
        with RunJournal(path) as journal:
            ResilientExecutor(journal).run(cells)
        failures = scan_journal(path).failed_cells()
        assert set(failures) == {"c1"}
        assert "ValueError: cell c1 exploded" in failures["c1"]["error"]
        assert "Traceback" in failures["c1"]["traceback"]

    def test_keyboard_interrupt_propagates(self):
        s = spec("c0")

        def fn():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            ResilientExecutor().run([(s, fn)])


class TestRetry:
    def test_transient_failure_retried_to_success(self):
        sleeps = []
        cells, calls = make_cells(2, failing="c0", fail_times={"c0": 2})
        executor = ResilientExecutor(max_retries=3, sleep=sleeps.append)
        result = executor.run(cells)
        assert [r.status for r in result] == ["ok", "ok"]
        assert calls["c0"] == 3
        assert result.records[0].attempts == 3
        assert result.records[1].attempts == 1
        assert executor.stats.retries == 2 and executor.stats.failed == 0
        assert len(sleeps) == 2

    def test_retries_exhausted_means_failed(self):
        cells, calls = make_cells(1, failing="c0")
        executor = ResilientExecutor(max_retries=2, sleep=lambda _: None)
        result = executor.run(cells)
        assert result.records[0].status == "failed"
        assert result.records[0].attempts == 3
        assert calls["c0"] == 3

    def test_no_backoff_slept_after_the_final_failed_attempt(self):
        # exhaustion must exit immediately: backoff buys time before a
        # retry, and after the last attempt there is nothing to wait for
        sleeps = []
        cells, _ = make_cells(1, failing="c0")
        executor = ResilientExecutor(max_retries=2, sleep=sleeps.append)
        executor.run(cells)
        assert len(sleeps) == 2      # one per *retry*, none trailing
        # same contract when every attempt is spent successfully
        sleeps.clear()
        ok_cells, _ = make_cells(1, failing="c0", fail_times={"c0": 2})
        ResilientExecutor(max_retries=2, sleep=sleeps.append).run(ok_cells)
        assert len(sleeps) == 2

    def test_backoff_is_seeded_deterministic_and_exponential(self):
        def delays(seed):
            executor = ResilientExecutor(seed=seed, backoff_base=0.1)
            return [executor._backoff_delay("cell/a", attempt)
                    for attempt in (1, 2, 3)]

        first, second = delays(7), delays(7)
        assert first == second                     # deterministic
        assert delays(7) != delays(8)              # seed-sensitive
        for attempt, delay in enumerate(first, start=1):
            nominal = 0.1 * 2 ** (attempt - 1)
            assert 0.5 * nominal <= delay < 1.5 * nominal

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            ResilientExecutor(max_retries=-1)


class TestWatchdog:
    def test_hung_cell_times_out_and_sweep_continues(self):
        s0, s1 = spec("c0"), spec("c1")

        def hangs():
            time.sleep(5.0)
            return [ok_record(s0)]

        result = ResilientExecutor(cell_timeout=0.1).run(
            [(s0, hangs), (s1, lambda: [ok_record(s1)])])
        assert [r.status for r in result] == ["timeout", "ok"]

    def test_fast_cell_passes_under_watchdog(self):
        s = spec("c0")
        result = ResilientExecutor(cell_timeout=30.0).run(
            [(s, lambda: [ok_record(s)])])
        assert [r.status for r in result] == ["ok"]

    def test_exception_inside_watchdog_thread_is_isolated(self):
        cells, _ = make_cells(2, failing="c0")
        result = ResilientExecutor(cell_timeout=30.0).run(cells)
        assert [r.status for r in result] == ["failed", "ok"]

    def test_timeout_error_is_runtime_error(self):
        assert issubclass(CellTimeoutError, RuntimeError)


class TestResume:
    def test_resume_replays_without_executing(self, journal_dir):
        path = journal_dir / "resume.jsonl"
        cells, calls = make_cells(3)
        with RunJournal(path) as journal:
            first = ResilientExecutor(journal, fingerprint="fp").run(cells)
        assert calls == {"c0": 1, "c1": 1, "c2": 1}

        cells2, calls2 = make_cells(3)
        with RunJournal(path, resume=True) as journal:
            executor = ResilientExecutor(journal, resume=True,
                                         fingerprint="fp")
            second = executor.run(cells2)
        assert calls2 == {}                        # nothing re-executed
        assert executor.stats.skipped == 3
        # bit-identical merged result, straight from the journal
        assert study_io.dumps(second) == study_io.dumps(first)

    def test_resume_runs_only_missing_and_failed_cells(self, journal_dir):
        path = journal_dir / "partial.jsonl"
        cells, _ = make_cells(3, failing="c1")
        with RunJournal(path) as journal:
            first = ResilientExecutor(journal, fingerprint="fp").run(cells)
        assert [r.status for r in first] == ["ok", "failed", "ok"]

        cells2, calls2 = make_cells(3)             # c1 healthy now
        with RunJournal(path, resume=True) as journal:
            second = ResilientExecutor(journal, resume=True,
                                       fingerprint="fp").run(cells2)
        assert calls2 == {"c1": 1}                 # only the failed cell
        assert [r.status for r in second] == ["ok", "ok", "ok"]

    def test_fingerprint_mismatch_refused(self, journal_dir):
        path = journal_dir / "mismatch.jsonl"
        cells, _ = make_cells(1)
        with RunJournal(path) as journal:
            ResilientExecutor(journal, fingerprint="fp-a").run(cells)
        with RunJournal(path, resume=True) as journal:
            with pytest.raises(ValueError, match="different study "
                                                 "configuration"):
                ResilientExecutor(journal, resume=True, fingerprint="fp-b")

    def test_resume_without_journal_is_noop(self):
        cells, calls = make_cells(2)
        result = ResilientExecutor(resume=True).run(cells)
        assert len(result) == 2 and len(calls) == 2
