"""Run journal: durable appends, crash-tolerant recovery, compaction."""

import json

import pytest

from repro.resilience.journal import (JournalError, RunJournal,
                                      scan_journal)


def entries(n=3):
    return [{"event": "cell_ok", "cell": f"c{i}", "attempt": 1,
             "records": [{"error_pct": float(i)}]} for i in range(n)]


class TestAppendScan:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            for entry in entries():
                journal.append(entry)
        scan = scan_journal(path)
        assert scan.entries == entries()
        assert not scan.truncated

    def test_missing_file_scans_empty(self, tmp_path):
        scan = scan_journal(tmp_path / "never_written.jsonl")
        assert scan.entries == [] and not scan.truncated

    def test_fresh_journal_truncates_previous(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.append({"event": "run_start", "fingerprint": "old"})
        with RunJournal(path) as journal:   # resume=False: start over
            journal.append({"event": "run_start", "fingerprint": "new"})
        assert scan_journal(path).fingerprint == "new"

    def test_resume_appends_to_existing(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.append({"event": "run_start", "fingerprint": "fp"})
        with RunJournal(path, resume=True) as journal:
            journal.append({"event": "run_resume", "fingerprint": "fp"})
        events = [e["event"] for e in scan_journal(path).entries]
        assert events == ["run_start", "run_resume"]


class TestRecovery:
    def test_truncated_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            for entry in entries(2):
                journal.append(entry)
        # simulate a kill mid-append: a partial line with no newline
        with open(path, "ab") as handle:
            handle.write(b'{"event":"cell_ok","cell":"c2","rec')
        scan = scan_journal(path)
        assert scan.truncated
        assert scan.entries == entries(2)

    def test_truncated_unicode_tail_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.append(entries(1)[0])
        with open(path, "ab") as handle:
            handle.write("{\"note\":\"café".encode("utf-8")[:-1])
        assert scan_journal(path).truncated

    def test_resume_append_trims_partial_tail(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.append(entries(1)[0])
        with open(path, "ab") as handle:
            handle.write(b'{"event":"cell_ok","cell":"par')
        # resuming must not glue new entries onto the crash artifact
        with RunJournal(path, resume=True) as journal:
            journal.append({"event": "run_resume"})
        scan = scan_journal(path)
        assert not scan.truncated
        assert [e["event"] for e in scan.entries] == \
            ["cell_ok", "run_resume"]

    def test_resume_append_trims_terminated_garbage_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.append(entries(1)[0])
        with open(path, "ab") as handle:
            handle.write(b'{"event":"cell_ok","cell"\n')
        with RunJournal(path, resume=True) as journal:
            journal.append({"event": "run_resume"})
        assert [e["event"] for e in scan_journal(path).entries] == \
            ["cell_ok", "run_resume"]

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        lines = [json.dumps(e) for e in entries(2)]
        lines.insert(1, '{"event": "cell_ok", "cell": broken')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="line 2"):
            scan_journal(path)

    def test_non_object_line_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('[1, 2, 3]\n')
        with pytest.raises(JournalError, match="not a JSON object"):
            scan_journal(path)

    def test_completed_cells_last_wins(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.append({"event": "cell_ok", "cell": "a",
                            "records": [{"v": 1}]})
            journal.append({"event": "cell_ok", "cell": "a",
                            "records": [{"v": 2}]})
        assert scan_journal(path).completed_cells() == {"a": [{"v": 2}]}

    def test_failed_cells_cleared_by_later_success(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.append({"event": "cell_failed", "cell": "a",
                            "final": True, "error": "E: boom"})
            journal.append({"event": "cell_failed", "cell": "b",
                            "final": True, "error": "E: boom"})
            journal.append({"event": "cell_ok", "cell": "b",
                            "records": []})
        assert list(scan_journal(path).failed_cells()) == ["a"]


class TestCompaction:
    def test_compact_preserves_resume_semantics(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.append({"event": "run_start", "fingerprint": "fp",
                        "cells": 2})
        journal.append({"event": "cell_start", "cell": "a", "attempt": 1})
        journal.append({"event": "cell_failed", "cell": "a", "attempt": 1,
                        "final": False, "error": "E"})
        journal.append({"event": "cell_start", "cell": "a", "attempt": 2})
        journal.append({"event": "cell_ok", "cell": "a", "attempt": 2,
                        "records": [{"v": 1}]})
        journal.append({"event": "cell_start", "cell": "b", "attempt": 1})
        journal.append({"event": "cell_failed", "cell": "b", "attempt": 1,
                        "final": True, "error": "E"})
        journal.close()

        before = scan_journal(path)
        removed = RunJournal(path, resume=True).compact()
        after = scan_journal(path)
        assert removed == 4   # three cell_start + one transient failure
        assert after.fingerprint == "fp"
        assert after.completed_cells() == before.completed_cells()
        assert list(after.failed_cells()) == list(before.failed_cells())


def serve_entries():
    """A serve-shaped journal: two tenants, per-batch checkpoints."""
    return [
        {"event": "serve_start", "backend": "numpy"},
        {"event": "tenant_open", "tenant": "cam0", "fingerprint": "f0"},
        {"event": "tenant_checkpoint", "tenant": "cam0",
         "fingerprint": "f0", "batches_done": 1, "checkpoint": {"v": 1}},
        {"event": "tenant_open", "tenant": "cam1", "fingerprint": "f1"},
        {"event": "tenant_checkpoint", "tenant": "cam0",
         "fingerprint": "f0", "batches_done": 2, "checkpoint": {"v": 2}},
        {"event": "tenant_checkpoint", "tenant": "cam1",
         "fingerprint": "f1", "batches_done": 1, "checkpoint": {"v": 1}},
        {"event": "tenant_checkpoint", "tenant": "cam1",
         "fingerprint": "f1", "batches_done": 2, "checkpoint": {"v": 2}},
    ]


class TestServeCompaction:
    def _write(self, path, events):
        with RunJournal(path) as journal:
            for event in events:
                journal.append(event)

    def test_keeps_only_latest_checkpoint_per_tenant(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        self._write(path, serve_entries())
        removed = RunJournal(path, resume=True).compact()
        assert removed == 2                     # one stale per tenant
        kept = scan_journal(path).entries
        checkpoints = [e for e in kept
                       if e["event"] == "tenant_checkpoint"]
        assert {(e["tenant"], e["batches_done"])
                for e in checkpoints} == {("cam0", 2), ("cam1", 2)}
        # lifecycle history survives compaction
        assert [e["event"] for e in kept[:2]] == ["serve_start",
                                                  "tenant_open"]

    def test_closed_tenant_checkpoints_are_dropped(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        events = serve_entries() + [
            {"event": "tenant_close", "tenant": "cam0",
             "scorecard": {"frames": 16}}]
        self._write(path, events)
        RunJournal(path, resume=True).compact()
        kept = scan_journal(path).entries
        checkpoints = [e for e in kept
                       if e["event"] == "tenant_checkpoint"]
        assert [e["tenant"] for e in checkpoints] == ["cam1"]
        assert any(e["event"] == "tenant_close" for e in kept)

    def test_checkpoint_after_reopen_survives_earlier_close(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        events = [
            {"event": "tenant_checkpoint", "tenant": "cam0",
             "fingerprint": "f0", "batches_done": 1, "checkpoint": {}},
            {"event": "tenant_close", "tenant": "cam0", "scorecard": {}},
            {"event": "tenant_open", "tenant": "cam0", "fingerprint": "f0"},
            {"event": "tenant_checkpoint", "tenant": "cam0",
             "fingerprint": "f0", "batches_done": 1, "checkpoint": {}},
        ]
        self._write(path, events)
        RunJournal(path, resume=True).compact()
        kept = scan_journal(path).entries
        assert [e["event"] for e in kept] == \
            ["tenant_close", "tenant_open", "tenant_checkpoint"]

    def test_unknown_events_are_kept_verbatim(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        exotic = {"event": "operator_note", "text": "fan replaced"}
        self._write(path, serve_entries() + [exotic])
        RunJournal(path, resume=True).compact()
        assert exotic in scan_journal(path).entries

    def test_size_bytes_tracks_file(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        journal = RunJournal(path)
        assert journal.size_bytes() == 0        # nothing written yet
        journal.append({"event": "serve_start"})
        journal.close()
        assert journal.size_bytes() == path.stat().st_size > 0

    def test_crash_during_compaction_preserves_journal(self, tmp_path,
                                                       monkeypatch):
        """Compaction goes through tmp+rename: a kill mid-rewrite must
        leave the previous journal byte-for-byte intact."""
        import repro.resilience.journal as journal_module

        path = tmp_path / "serve.jsonl"
        self._write(path, serve_entries())
        before = path.read_bytes()

        def crash(*args, **kwargs):
            raise RuntimeError("SIGKILL mid-rewrite")

        monkeypatch.setattr(journal_module, "atomic_write_bytes", crash)
        with pytest.raises(RuntimeError, match="mid-rewrite"):
            RunJournal(path, resume=True).compact()
        monkeypatch.undo()
        assert path.read_bytes() == before
        # and the untouched journal still compacts fine afterwards
        assert RunJournal(path, resume=True).compact() == 2
