"""Property-based tests for layers and optimizers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.module import Parameter
from repro.tensor import Tensor


@given(st.integers(1, 4), st.integers(1, 8), st.integers(1, 8),
       st.integers(1, 3), st.integers(1, 3), st.integers(0, 2),
       st.integers(5, 12))
@settings(max_examples=50, deadline=None)
def test_conv_output_shape_formula(batch, cin, cout, kernel, stride,
                                   padding, size):
    """Output spatial size always matches floor((H + 2p - k)/s) + 1."""
    if size + 2 * padding < kernel:
        return
    conv = nn.Conv2d(cin, cout, kernel, stride=stride, padding=padding)
    x = Tensor(np.zeros((batch, cin, size, size), dtype=np.float32))
    out = conv(x)
    expected = (size + 2 * padding - kernel) // stride + 1
    assert out.shape == (batch, cout, expected, expected)


@given(st.integers(2, 16), st.integers(1, 4), st.integers(2, 6))
@settings(max_examples=40, deadline=None)
def test_bn_train_output_statistics(batch, channels, size):
    """In train mode with identity affine, per-channel output is ~N(0,1)
    whenever the input varies."""
    rng = np.random.default_rng(batch * 100 + channels)
    bn = nn.BatchNorm2d(channels)
    x = rng.standard_normal((batch, channels, size, size)) * 3 + 1
    out = bn(Tensor(x.astype(np.float32))).data
    np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-3)
    np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=0.05)


@given(st.floats(0.01, 0.5), st.integers(1, 10))
@settings(max_examples=30, deadline=None)
def test_bn_running_mean_ema_converges(momentum, batches):
    """Feeding a constant-statistics stream drives the running mean
    toward the batch mean geometrically at rate (1 - momentum)."""
    bn = nn.BatchNorm2d(1, momentum=momentum)
    rng = np.random.default_rng(0)
    base = rng.standard_normal((64, 1, 4, 4)).astype(np.float32) + 5.0
    batch_mean = float(base.mean())
    for _ in range(batches):
        bn(Tensor(base))
    expected = batch_mean * (1 - (1 - momentum) ** batches)
    assert bn.running_mean[0] == pytest.approx(expected, rel=0.02)


@given(st.floats(0.001, 0.5), st.integers(1, 50))
@settings(max_examples=30, deadline=None)
def test_sgd_descends_quadratic(lr, steps):
    """Plain SGD on f(x) = x^2/2 never increases |x| for lr < 1."""
    p = Parameter(np.array([10.0], dtype=np.float32))
    opt = nn.SGD([p], lr=lr)
    previous = abs(float(p.data[0]))
    for _ in range(steps):
        p.grad = p.data.copy()   # grad of x^2/2
        opt.step()
        current = abs(float(p.data[0]))
        assert current <= previous + 1e-6
        previous = current


@given(st.integers(1, 60))
@settings(max_examples=20, deadline=None)
def test_adam_step_norm_bounded_by_lr(steps):
    """Adam's per-step displacement is bounded by ~lr (trust-region-like
    property of the update rule)."""
    p = Parameter(np.array([5.0], dtype=np.float32))
    opt = nn.Adam([p], lr=0.1)
    rng = np.random.default_rng(0)
    for _ in range(steps):
        before = float(p.data[0])
        p.grad = np.array([rng.standard_normal() * 10], dtype=np.float32)
        opt.step()
        assert abs(float(p.data[0]) - before) <= 0.1 * 1.2 + 1e-6
