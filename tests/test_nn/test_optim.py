"""Optimizer math: SGD (momentum, weight decay) and Adam vs manual updates."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter


def param(values):
    p = Parameter(np.asarray(values, dtype=np.float32))
    return p


class TestSGD:
    def test_vanilla_step(self):
        p = param([1.0, 2.0])
        p.grad = np.array([0.5, -0.5], dtype=np.float32)
        nn.SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 2.05], rtol=1e-6)

    def test_skips_none_grad(self):
        p = param([1.0])
        nn.SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_weight_decay(self):
        p = param([2.0])
        p.grad = np.array([0.0], dtype=np.float32)
        nn.SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0], rtol=1e-6)

    def test_momentum_accumulates(self):
        p = param([0.0])
        opt = nn.SGD([p], lr=1.0, momentum=0.9)
        for _ in range(2):
            p.grad = np.array([1.0], dtype=np.float32)
            opt.step()
        # v1 = 1, x = -1; v2 = 0.9 + 1 = 1.9, x = -2.9
        np.testing.assert_allclose(p.data, [-2.9], rtol=1e-6)

    def test_state_bytes(self):
        p = param(np.zeros(10))
        assert nn.SGD([p], lr=0.1).state_bytes() == 0
        assert nn.SGD([p], lr=0.1, momentum=0.9).state_bytes() == 40

    def test_zero_grad(self):
        p = param([1.0])
        p.grad = np.array([1.0], dtype=np.float32)
        opt = nn.SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)


class TestAdam:
    def test_first_step_matches_manual(self):
        p = param([1.0])
        grad = np.array([0.3], dtype=np.float32)
        p.grad = grad
        opt = nn.Adam([p], lr=0.01, betas=(0.9, 0.999), eps=1e-8)
        opt.step()
        m_hat = grad  # m/(1-b1) after one step
        v_hat = grad ** 2
        expected = 1.0 - 0.01 * m_hat / (np.sqrt(v_hat) + 1e-8)
        np.testing.assert_allclose(p.data, expected, rtol=1e-5)

    def test_constant_gradient_converges_to_lr_step(self):
        # With a constant gradient, Adam's effective step approaches lr.
        p = param([0.0])
        opt = nn.Adam([p], lr=0.1)
        for _ in range(50):
            p.grad = np.array([2.0], dtype=np.float32)
            opt.step()
        steps = -p.data[0] / 50
        assert 0.08 < steps < 0.11

    def test_weight_decay_applied(self):
        p = param([5.0])
        p.grad = np.array([0.0], dtype=np.float32)
        opt = nn.Adam([p], lr=0.1, weight_decay=1.0)
        opt.step()
        assert p.data[0] < 5.0

    def test_state_bytes_two_moments(self):
        p = param(np.zeros(10))
        assert nn.Adam([p]).state_bytes() == 80

    def test_optimizes_quadratic(self):
        p = param([4.0])
        opt = nn.Adam([p], lr=0.3)
        for _ in range(200):
            p.grad = 2.0 * p.data  # d/dx x^2
            opt.step()
        assert abs(p.data[0]) < 0.05
