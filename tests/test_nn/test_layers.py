"""Layer semantics: Conv2d, Linear, BatchNorm2d, activations, pooling."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


class TestConv2d:
    def test_output_shape(self, rng):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        out = conv(Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_no_bias(self):
        conv = nn.Conv2d(3, 4, 3, bias=False)
        assert conv.bias is None
        assert [n for n, _ in conv.named_parameters()] == ["weight"]

    def test_grouped_weight_shape(self):
        conv = nn.Conv2d(8, 16, 3, groups=4)
        assert conv.weight.shape == (16, 2, 3, 3)

    def test_repr(self):
        assert "groups=2" in repr(nn.Conv2d(4, 4, 3, groups=2))


class TestLinear:
    def test_matches_manual(self, rng):
        lin = nn.Linear(5, 3)
        x = rng.standard_normal((4, 5)).astype(np.float32)
        expected = x @ lin.weight.data.T + lin.bias.data
        np.testing.assert_allclose(lin(Tensor(x)).data, expected, rtol=1e-5)

    def test_no_bias(self, rng):
        lin = nn.Linear(5, 3, bias=False)
        assert lin.bias is None
        x = rng.standard_normal((2, 5)).astype(np.float32)
        np.testing.assert_allclose(lin(Tensor(x)).data, x @ lin.weight.data.T,
                                   rtol=1e-5)


class TestBatchNorm2d:
    def test_train_mode_updates_running_stats(self, rng):
        bn = nn.BatchNorm2d(2, momentum=0.1)
        x = rng.standard_normal((16, 2, 4, 4)) + 3.0
        bn(Tensor(x))
        # after one batch with momentum 0.1: mean buffer = 0.9*0 + 0.1*batch
        np.testing.assert_allclose(bn.running_mean,
                                   0.1 * x.mean(axis=(0, 2, 3)), rtol=1e-4)
        assert bn.batches_tracked == 1

    def test_eval_mode_does_not_update(self, rng):
        bn = nn.BatchNorm2d(2)
        bn.eval()
        before = bn.running_mean.copy()
        bn(Tensor(rng.standard_normal((4, 2, 3, 3)) + 5))
        np.testing.assert_allclose(bn.running_mean, before)
        assert bn.batches_tracked == 0

    def test_momentum_one_tracks_last_batch(self, rng):
        bn = nn.BatchNorm2d(3, momentum=1.0)
        x = rng.standard_normal((8, 3, 4, 4)) * 2 + 1
        bn(Tensor(x))
        np.testing.assert_allclose(bn.running_mean, x.mean(axis=(0, 2, 3)),
                                   rtol=1e-4)

    def test_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(1, momentum=1.0)
        calibration = rng.standard_normal((32, 1, 4, 4)) * 3 + 2
        bn(Tensor(calibration))
        bn.eval()
        out = bn(Tensor(calibration)).data
        assert abs(out.mean()) < 0.05
        assert abs(out.std() - 1.0) < 0.05

    def test_reset_running_stats(self, rng):
        bn = nn.BatchNorm2d(2)
        bn(Tensor(rng.standard_normal((4, 2, 3, 3)) + 9))
        bn.reset_running_stats()
        np.testing.assert_allclose(bn.running_mean, 0.0)
        np.testing.assert_allclose(bn.running_var, 1.0)
        assert bn.batches_tracked == 0

    def test_wrong_rank_raises(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(2)(Tensor(np.zeros((2, 2))))

    def test_wrong_channels_raises(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(2)(Tensor(np.zeros((1, 3, 4, 4))))


class TestActivationsAndPooling:
    def test_relu(self):
        out = nn.ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_relu6_clips(self):
        out = nn.ReLU6()(Tensor(np.array([-1.0, 3.0, 9.0])))
        np.testing.assert_allclose(out.data, [0.0, 3.0, 6.0])

    def test_identity(self, rng):
        x = Tensor(rng.standard_normal(4))
        assert nn.Identity()(x) is x

    def test_flatten(self):
        assert nn.Flatten()(Tensor(np.zeros((2, 3, 4)))).shape == (2, 12)

    def test_max_pool_layer(self, rng):
        out = nn.MaxPool2d(2)(Tensor(rng.standard_normal((1, 2, 4, 4))))
        assert out.shape == (1, 2, 2, 2)

    def test_avg_pool_layer(self, rng):
        out = nn.AvgPool2d(2, stride=2)(Tensor(rng.standard_normal((1, 2, 6, 6))))
        assert out.shape == (1, 2, 3, 3)

    def test_global_avg_pool_layer(self, rng):
        out = nn.GlobalAvgPool2d()(Tensor(rng.standard_normal((2, 5, 3, 3))))
        assert out.shape == (2, 5)
