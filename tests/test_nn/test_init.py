"""Weight initializers: statistics, shapes, determinism."""

import numpy as np
import pytest

from repro.nn import init


class TestKaiming:
    def test_std_matches_fan_in(self):
        init.seed(0)
        weight = init.kaiming_normal((256, 128, 3, 3))
        expected_std = np.sqrt(2.0 / (128 * 9))
        assert weight.std() == pytest.approx(expected_std, rel=0.05)

    def test_linear_fan_in(self):
        init.seed(0)
        weight = init.kaiming_normal((64, 512))
        assert weight.std() == pytest.approx(np.sqrt(2.0 / 512), rel=0.1)

    def test_dtype_float32(self):
        assert init.kaiming_normal((4, 4)).dtype == np.float32

    def test_unsupported_shape_raises(self):
        with pytest.raises(ValueError):
            init.kaiming_normal((4,))

    def test_seeding_reproducible(self):
        init.seed(42)
        a = init.kaiming_normal((8, 8))
        init.seed(42)
        b = init.kaiming_normal((8, 8))
        np.testing.assert_array_equal(a, b)

    def test_mean_near_zero(self):
        init.seed(1)
        weight = init.kaiming_normal((128, 128))
        assert abs(weight.mean()) < 0.01


class TestXavier:
    def test_bounds(self):
        init.seed(0)
        weight = init.xavier_uniform((64, 64))
        limit = np.sqrt(6.0 / 128)
        assert np.abs(weight).max() <= limit + 1e-7

    def test_conv_shape(self):
        init.seed(0)
        weight = init.xavier_uniform((16, 8, 3, 3))
        assert weight.shape == (16, 8, 3, 3)


class TestUniformFanIn:
    def test_bound(self):
        init.seed(0)
        bias = init.uniform_fan_in((100,), fan_in=25)
        assert np.abs(bias).max() <= 0.2 + 1e-7

    def test_zero_fan_in(self):
        bias = init.uniform_fan_in((4,), fan_in=0)
        np.testing.assert_array_equal(bias, 0.0)
