"""Module system: registration, traversal, state dicts, modes."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import trace_calls
from repro.tensor import Tensor


def small_net():
    return nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))


class TestRegistration:
    def test_parameters_registered_in_order(self):
        net = small_net()
        names = [name for name, _ in net.named_parameters()]
        assert names == ["0.weight", "0.bias", "2.weight", "2.bias"]

    def test_num_parameters(self):
        net = small_net()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_buffers_registered(self):
        bn = nn.BatchNorm2d(3)
        names = dict(bn.named_buffers())
        assert set(names) == {"running_mean", "running_var"}

    def test_set_buffer_unknown_raises(self):
        bn = nn.BatchNorm2d(3)
        with pytest.raises(KeyError):
            bn.set_buffer("nope", np.zeros(3))

    def test_named_modules_includes_nested(self):
        net = nn.Sequential(nn.Sequential(nn.ReLU()))
        names = [name for name, _ in net.named_modules()]
        assert names == ["", "0", "0.0"]


class TestModes:
    def test_train_eval_recursive(self):
        net = nn.Sequential(nn.BatchNorm2d(2), nn.Sequential(nn.BatchNorm2d(2)))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_requires_grad_toggle(self):
        net = small_net()
        net.requires_grad_(False)
        assert all(not p.requires_grad for p in net.parameters())
        net.requires_grad_(True)
        assert all(p.requires_grad for p in net.parameters())

    def test_zero_grad(self, rng):
        net = small_net()
        out = net(Tensor(rng.standard_normal((3, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self, rng):
        net1, net2 = small_net(), small_net()
        net2.load_state_dict(net1.state_dict())
        x = rng.standard_normal((2, 4))
        np.testing.assert_allclose(net1(Tensor(x)).data, net2(Tensor(x)).data)

    def test_state_dict_copies(self):
        net = small_net()
        state = net.state_dict()
        state["0.weight"][:] = 0.0
        assert not np.allclose(next(net.parameters()).data, 0.0)

    def test_missing_key_raises(self):
        net = small_net()
        state = net.state_dict()
        del state["0.bias"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_unexpected_key_raises(self):
        net = small_net()
        state = net.state_dict()
        state["extra"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        net = small_net()
        state = net.state_dict()
        state["0.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_buffers_roundtrip(self, rng):
        bn = nn.BatchNorm2d(2)
        bn(Tensor(rng.standard_normal((4, 2, 3, 3))))  # update running stats
        snapshot = bn.state_dict()
        bn.reset_running_stats()
        bn.load_state_dict(snapshot)
        np.testing.assert_allclose(bn.running_mean, snapshot["running_mean"])


class TestSequential:
    def test_iteration_and_indexing(self):
        relu = nn.ReLU()
        net = nn.Sequential(nn.Linear(2, 2), relu)
        assert len(net) == 2
        assert net[1] is relu
        assert list(net)[1] is relu

    def test_append(self):
        net = nn.Sequential(nn.Linear(2, 3))
        net.append(nn.Linear(3, 4))
        out = net(Tensor(np.zeros((1, 2))))
        assert out.shape == (1, 4)


class TestTraceCalls:
    def test_records_leaf_calls_only(self, rng):
        net = nn.Sequential(nn.Linear(4, 4), nn.ReLU())
        with trace_calls() as records:
            net(Tensor(rng.standard_normal((2, 4))))
        kinds = [type(r.module).__name__ for r in records]
        assert kinds == ["Linear", "ReLU"]
        assert all(r.duration_s >= 0 for r in records)

    def test_no_recording_outside_context(self, rng):
        net = nn.Sequential(nn.Linear(4, 4))
        with trace_calls() as records:
            pass
        net(Tensor(rng.standard_normal((1, 4))))
        assert records == []

    def test_nested_traces_are_independent(self, rng):
        net = nn.Linear(2, 2)
        x = Tensor(rng.standard_normal((1, 2)))
        with trace_calls() as outer:
            net(x)
            with trace_calls() as inner:
                net(x)
        assert len(inner) == 1
        assert len(outer) == 1
