"""Execution backends: dispatch, numerical agreement, arena reuse."""

import threading

import numpy as np
import pytest

from repro.engine import (
    BACKEND_NAMES,
    InstrumentedBackend,
    NumpyBackend,
    ThreadedBackend,
    create_backend,
    default_backend,
    get_backend,
    use_backend,
)
from repro.tensor import Tensor, no_grad
from repro.tensor.conv import conv2d, max_pool2d
from repro.tensor import functional as F


def rand(shape, seed, requires_grad=False, dtype=np.float32):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape).astype(dtype),
                  requires_grad=requires_grad)


class TestDispatch:
    def test_default_backend_is_numpy(self):
        assert get_backend().name == "numpy"
        assert default_backend() is get_backend()

    def test_use_backend_activates_and_restores(self):
        backend = ThreadedBackend(threads=2)
        before = get_backend()
        with use_backend(backend):
            assert get_backend() is backend
        assert get_backend() is before
        backend.close()

    def test_use_backend_nests(self):
        a, b = NumpyBackend(), NumpyBackend()
        with use_backend(a):
            with use_backend(b):
                assert get_backend() is b
            assert get_backend() is a

    def test_use_backend_restores_on_exception(self):
        backend = NumpyBackend()
        with pytest.raises(RuntimeError):
            with use_backend(backend):
                raise RuntimeError("boom")
        assert get_backend() is not backend

    def test_use_backend_is_thread_local(self):
        backend = NumpyBackend()
        seen = {}

        def worker():
            seen["backend"] = get_backend()

        with use_backend(backend):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["backend"] is not backend  # other thread saw the default

    def test_create_backend_names(self):
        for name in BACKEND_NAMES:
            backend = create_backend(name, threads=2)
            assert backend.name == name
            backend.close()
        with pytest.raises(ValueError):
            create_backend("cuda")

    def test_backward_uses_forward_time_backend(self):
        """The backend active at forward time serves the backward pass."""
        inst = InstrumentedBackend(NumpyBackend())
        x = rand((2, 3, 8, 8), 0, requires_grad=True)
        w = rand((4, 3, 3, 3), 1, requires_grad=True)
        with use_backend(inst):
            out = conv2d(x, w, padding=1)
        # Context has exited; backward must still hit the instrumented backend.
        out.backward(np.ones_like(out.data))
        assert inst.op_stats["conv2d_backward"].calls == 1


class TestBackendAgreement:
    """ThreadedBackend must match NumpyBackend on every kernel."""

    @pytest.mark.parametrize("groups,cin,cout", [(1, 6, 8), (2, 6, 8), (6, 6, 6)])
    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 0)])
    def test_conv_forward_matches(self, groups, cin, cout, stride, padding):
        x = rand((16, cin, 10, 10), 2)
        w = rand((cout, cin // groups, 3, 3), 3)
        with use_backend(NumpyBackend()), no_grad():
            ref = conv2d(x, w, stride=stride, padding=padding, groups=groups)
        threaded = ThreadedBackend(threads=4, min_shard=2)
        with use_backend(threaded), no_grad():
            got = conv2d(x, w, stride=stride, padding=padding, groups=groups)
        threaded.close()
        np.testing.assert_allclose(got.data, ref.data, rtol=1e-5, atol=1e-5)

    @pytest.mark.parametrize("groups", [1, 2, 6])
    def test_conv_backward_matches(self, groups):
        def grads(backend):
            x = rand((16, 6, 8, 8), 4, requires_grad=True)
            w = rand((6, 6 // groups, 3, 3), 5, requires_grad=True)
            with use_backend(backend):
                out = conv2d(x, w, stride=1, padding=1, groups=groups)
                out.backward(np.ones_like(out.data))
            return x.grad, w.grad

        ref_dx, ref_dw = grads(NumpyBackend())
        threaded = ThreadedBackend(threads=4, min_shard=2)
        got_dx, got_dw = grads(threaded)
        threaded.close()
        np.testing.assert_allclose(got_dx, ref_dx, rtol=1e-5, atol=1e-5)
        np.testing.assert_allclose(got_dw, ref_dw, rtol=1e-4, atol=1e-4)

    def test_threaded_weight_grad_deterministic(self):
        threaded = ThreadedBackend(threads=4, min_shard=2)

        def dw():
            x = rand((32, 4, 8, 8), 6, requires_grad=False)
            w = rand((8, 4, 3, 3), 7, requires_grad=True)
            with use_backend(threaded):
                out = conv2d(x, w, padding=1)
                out.backward(np.ones_like(out.data))
            return w.grad

        first = dw()
        for _ in range(3):
            np.testing.assert_array_equal(dw(), first)
        threaded.close()

    def test_matmul_matches_and_shards(self):
        a = rand((64, 32), 8)
        b = rand((32, 16), 9)
        ref = a.data @ b.data
        threaded = ThreadedBackend(threads=4, min_shard=4)
        np.testing.assert_array_equal(threaded.matmul(a.data, b.data), ref)
        threaded.close()

    def test_small_batch_falls_back_to_single_thread(self):
        threaded = ThreadedBackend(threads=4, min_shard=8)
        assert threaded._shards(4) == []
        assert len(threaded._shards(64)) > 1
        threaded.close()

    def test_batchnorm_stats_match(self):
        x = rand((16, 5, 6, 6), 10)
        ref_mean, ref_var = NumpyBackend().batchnorm_stats(x.data)
        threaded = ThreadedBackend(threads=2)
        got_mean, got_var = threaded.batchnorm_stats(x.data)
        threaded.close()
        np.testing.assert_array_equal(got_mean, ref_mean)
        np.testing.assert_array_equal(got_var, ref_var)

    def test_pooling_matches(self):
        x = rand((16, 3, 8, 8), 11, requires_grad=True)
        with use_backend(NumpyBackend()):
            ref = max_pool2d(x, 2)
            ref.backward(np.ones_like(ref.data))
        ref_grad = x.grad
        x.zero_grad()
        threaded = ThreadedBackend(threads=2)
        with use_backend(threaded):
            got = max_pool2d(x, 2)
            got.backward(np.ones_like(got.data))
        threaded.close()
        np.testing.assert_array_equal(got.data, ref.data)
        np.testing.assert_array_equal(x.grad, ref_grad)

    def test_model_forward_matches_across_backends(self):
        """A whole conv-BN-linear model agrees across backends."""
        from repro import nn
        model = nn.Sequential(
            nn.Conv2d(3, 8, 3, padding=1, bias=False), nn.BatchNorm2d(8),
            nn.ReLU(), nn.GlobalAvgPool2d(), nn.Linear(8, 10))
        model.eval()
        x = rand((32, 3, 8, 8), 12)
        with no_grad():
            ref = model(x).data
            threaded = ThreadedBackend(threads=4, min_shard=2)
            with use_backend(threaded):
                got = model(x).data
            threaded.close()
        np.testing.assert_allclose(got, ref, rtol=1e-5, atol=1e-5)


class TestArena:
    def test_steady_state_reuse(self):
        """Repeated same-shape convs stop allocating after the first call."""
        backend = NumpyBackend()
        x = rand((4, 3, 8, 8), 13, requires_grad=True)
        w = rand((8, 3, 3, 3), 14, requires_grad=True)
        with use_backend(backend):
            for _ in range(3):
                out = conv2d(x, w, padding=1)
                out.backward(np.ones_like(out.data))
                x.zero_grad()
                w.zero_grad()
        stats = backend.arena_stats()
        assert stats.requests == 6          # pad + dcols per iteration
        assert stats.hits == 4              # all but the first iteration
        assert stats.bytes_reused > 0
        assert stats.hit_rate == pytest.approx(4 / 6)

    def test_no_grad_releases_pad_immediately(self):
        backend = NumpyBackend()
        x = rand((4, 3, 8, 8), 15)
        w = rand((8, 3, 3, 3), 16)
        with use_backend(backend), no_grad():
            conv2d(x, w, padding=1)
            conv2d(x, w, padding=1)
        stats = backend.arena_stats()
        assert stats.requests == 2
        assert stats.hits == 1

    def test_release_refuses_views_and_double_release(self):
        backend = NumpyBackend()
        arena = backend.arena
        buf = arena.acquire((4, 4), np.float32)
        arena.release(buf[:2])              # view: refused
        assert arena.pooled_buffers() == 0
        arena.release(buf)
        arena.release(buf)                  # double release: no-op
        assert arena.pooled_buffers() == 1

    def test_clear_resets_counters(self):
        backend = NumpyBackend()
        buf = backend.arena.acquire((8,), np.float32)
        backend.arena.release(buf)
        backend.arena.clear()
        stats = backend.arena_stats()
        assert stats.requests == 0 and backend.arena.pooled_buffers() == 0

    def test_results_unaffected_by_reuse(self):
        """Workspace recycling must not change values batch to batch."""
        backend = NumpyBackend()
        x1 = rand((4, 3, 8, 8), 17)
        x2 = rand((4, 3, 8, 8), 18)
        w = rand((8, 3, 3, 3), 19)
        with no_grad():
            fresh1 = conv2d(x1, w, padding=1).data
            fresh2 = conv2d(x2, w, padding=1).data
            with use_backend(backend):
                np.testing.assert_array_equal(conv2d(x1, w, padding=1).data, fresh1)
                np.testing.assert_array_equal(conv2d(x2, w, padding=1).data, fresh2)
                np.testing.assert_array_equal(conv2d(x1, w, padding=1).data, fresh1)


class TestInstrumentedBackend:
    def test_counts_and_times_kernels(self):
        inst = InstrumentedBackend(NumpyBackend())
        x = rand((4, 3, 8, 8), 20, requires_grad=True)
        w = rand((8, 3, 3, 3), 21, requires_grad=True)
        with use_backend(inst):
            out = conv2d(x, w, padding=1)
            out.backward(np.ones_like(out.data))
            F.batch_norm_train(rand((4, 3, 4, 4), 22),
                               Tensor(np.ones(3)), Tensor(np.zeros(3)))
        assert inst.op_stats["conv2d_forward"].calls == 1
        assert inst.op_stats["conv2d_backward"].calls == 1
        assert inst.op_stats["batchnorm_stats"].calls == 1
        assert inst.total_time_s() > 0
        assert "conv2d_forward" in inst.describe()

    def test_arena_delta_and_reset(self):
        inner = NumpyBackend()
        inst = InstrumentedBackend(inner)
        x = rand((4, 3, 8, 8), 23)
        w = rand((8, 3, 3, 3), 24)
        with use_backend(inst), no_grad():
            conv2d(x, w, padding=1)
        assert inst.arena_delta().requests == 1
        inst.reset_stats()
        assert inst.arena_delta().requests == 0
        assert inst.op_stats == {}

    def test_shares_inner_name_and_arena(self):
        inner = ThreadedBackend(threads=2)
        inst = InstrumentedBackend(inner)
        assert inst.name == "threaded"
        assert inst.arena is inner.arena
        inner.close()
