"""Gradcheck for grouped/depthwise convolution under every backend.

The backend contract: the default NumpyBackend reproduces the seed
numerics bit-for-bit, and the ThreadedBackend matches finite differences
just as tightly (its only reassociation is the shard-ordered weight
gradient sum).  These checks run in float64 so the tolerance is the
gradcheck default.
"""

import numpy as np
import pytest

from repro.engine import NumpyBackend, ThreadedBackend, use_backend
from repro.tensor import Tensor, gradcheck
from repro.tensor.conv import conv2d


def make_backend(name):
    if name == "numpy":
        return NumpyBackend()
    # Small min_shard so the tiny gradcheck batches actually shard.
    return ThreadedBackend(threads=2, min_shard=2)


def f64(shape, seed):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape), requires_grad=True)


@pytest.fixture(params=["numpy", "threaded"])
def backend(request):
    built = make_backend(request.param)
    with use_backend(built):
        yield built
    built.close()


class TestConvGradcheckPerBackend:
    def test_standard_conv(self, backend):
        x = f64((4, 2, 5, 5), 0)
        w = f64((3, 2, 3, 3), 1)
        b = f64((3,), 2)
        gradcheck(lambda x, w, b: conv2d(x, w, b, stride=1, padding=1).sum(),
                  [x, w, b])

    def test_grouped_conv(self, backend):
        x = f64((4, 4, 5, 5), 3)
        w = f64((6, 2, 3, 3), 4)      # groups=2: 4 in, 6 out
        gradcheck(lambda x, w: conv2d(x, w, stride=1, padding=1,
                                      groups=2).sum(), [x, w])

    def test_grouped_strided_conv(self, backend):
        x = f64((4, 6, 6, 6), 5)
        w = f64((6, 2, 3, 3), 6)      # groups=3
        gradcheck(lambda x, w: conv2d(x, w, stride=2, padding=0,
                                      groups=3).sum(), [x, w])

    def test_depthwise_conv(self, backend):
        x = f64((4, 5, 5, 5), 7)
        w = f64((5, 1, 3, 3), 8)      # groups == channels
        gradcheck(lambda x, w: conv2d(x, w, stride=1, padding=1,
                                      groups=5).sum(), [x, w])


class TestCrossBackendIdentity:
    """Outputs and gradients must agree across backends on one graph each."""

    @pytest.mark.parametrize("groups,cin,cout", [(1, 4, 6), (2, 4, 6), (4, 4, 4)])
    def test_outputs_and_grads_identical(self, groups, cin, cout):
        def run(backend):
            x = f64((6, cin, 5, 5), 9)
            w = f64((cout, cin // groups, 3, 3), 10)
            with use_backend(backend):
                out = conv2d(x, w, stride=1, padding=1, groups=groups)
                out.backward(np.ones_like(out.data))
            return out.data, x.grad, w.grad

        ref = run(NumpyBackend())
        threaded = ThreadedBackend(threads=2, min_shard=2)
        got = run(threaded)
        threaded.close()
        np.testing.assert_allclose(got[0], ref[0], atol=1e-12)
        np.testing.assert_allclose(got[1], ref[1], atol=1e-12)
        np.testing.assert_allclose(got[2], ref[2], atol=1e-10)
