"""Engine bench entry point, CLI flags, and study-harness integration."""

import json

import pytest

from repro.cli import main
from repro.core.config import StudyConfig
from repro.core.runner import _GRID_SUMMARY_CACHE, run_native_study
from repro.engine.bench import format_engine_bench, run_engine_bench, write_engine_bench


QUICK = dict(batch=8, channels=4, size=8, repeats=1)


class TestEngineBench:
    @pytest.fixture(scope="class")
    def doc(self):
        return run_engine_bench(backends=("numpy", "threaded"), threads=2,
                                **QUICK)

    def test_document_shape(self, doc):
        assert doc["format"] == "repro.engine_bench"
        assert set(doc["backends"]) == {"numpy", "threaded"}
        for entry in doc["backends"].values():
            for op in ("conv_forward", "conv_backward", "bn_opt_step"):
                assert entry[op]["best_s"] > 0
                assert entry[op]["median_s"] >= entry[op]["best_s"]
            assert entry["arena"]["requests"] > 0

    def test_speedup_ratios_present(self, doc):
        ratios = doc["speedup_threaded_vs_numpy"]
        assert set(ratios) == {"conv_forward", "conv_backward", "bn_opt_step"}
        assert all(r > 0 for r in ratios.values())

    def test_format_is_renderable(self, doc):
        text = format_engine_bench(doc)
        assert "numpy" in text and "threaded" in text
        assert "speedup" in text

    def test_write_engine_bench(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        write_engine_bench(path, backends=("numpy",), **QUICK)
        loaded = json.loads(path.read_text())
        assert loaded["workload"]["batch"] == QUICK["batch"]
        assert "numpy" in loaded["backends"]


class TestCliBackendFlags:
    def test_bench_command_writes_json(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        rc = main(["bench", "--backends", "numpy", "--batch", "8",
                   "--repeats", "1", "--json", str(path)])
        assert rc == 0
        assert json.loads(path.read_text())["format"] == "repro.engine_bench"
        assert "wrote" in capsys.readouterr().out

    def test_global_backend_flag_accepted(self, capsys):
        rc = main(["--backend", "threaded", "--threads", "2", "models"])
        assert rc == 0
        assert "resnet18" in capsys.readouterr().out

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["--backend", "cuda", "models"])


class TestNativeStudyBackend:
    @pytest.fixture(scope="class")
    def tiny_config(self):
        return dict(models=("wrn40_2",), methods=("bn_norm",),
                    batch_sizes=(32,), corruptions=("fog",),
                    image_size=16, stream_samples=64, train_samples=64,
                    train_epochs=1)

    def test_records_carry_backend_name(self, micro_trained_model,
                                        tiny_config):
        model, _ = micro_trained_model
        config = StudyConfig(backend="numpy", **tiny_config)
        result = run_native_study(config, models={"wrn40_2": model})
        assert all(r.backend == "numpy" for r in result)

    def test_threaded_backend_matches_numpy_errors(self, micro_trained_model,
                                                   tiny_config):
        model, _ = micro_trained_model
        ref = run_native_study(StudyConfig(backend="numpy", **tiny_config),
                               models={"wrn40_2": model})
        got = run_native_study(StudyConfig(backend="threaded", threads=2,
                                           **tiny_config),
                               models={"wrn40_2": model})
        assert [r.backend for r in got] == ["threaded"]
        assert got.records[0].error_pct == pytest.approx(
            ref.records[0].error_pct, abs=1e-6)

    def test_backend_survives_json_round_trip(self, micro_trained_model,
                                              tiny_config):
        from repro.core import io as study_io
        model, _ = micro_trained_model
        result = run_native_study(StudyConfig(backend="numpy", **tiny_config),
                                  models={"wrn40_2": model})
        restored = study_io.loads(study_io.dumps(result))
        assert restored.records[0].backend == "numpy"


class TestSummaryCache:
    def test_cache_builds_once_and_clears(self):
        _GRID_SUMMARY_CACHE.clear()
        assert len(_GRID_SUMMARY_CACHE) == 0
        calls = []

        def builder(name):
            calls.append(name)
            return f"summary-of-{name}"

        assert _GRID_SUMMARY_CACHE.get_or_build("m", builder) == "summary-of-m"
        assert _GRID_SUMMARY_CACHE.get_or_build("m", builder) == "summary-of-m"
        assert calls == ["m"]
        _GRID_SUMMARY_CACHE.clear()
        _GRID_SUMMARY_CACHE.get_or_build("m", builder)
        assert calls == ["m", "m"]
        _GRID_SUMMARY_CACHE.clear()

    def test_concurrent_builds_converge_to_one_entry(self):
        import threading
        _GRID_SUMMARY_CACHE.clear()
        results = []

        def build():
            results.append(_GRID_SUMMARY_CACHE.get_or_build(
                "race", lambda n: object()))

        threads = [threading.Thread(target=build) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(r) for r in results}) == 1
        _GRID_SUMMARY_CACHE.clear()
