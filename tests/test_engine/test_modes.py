"""Autograd-mode handling and its composition with backend selection."""

import threading

import numpy as np
import pytest

from repro.engine import NumpyBackend, get_backend, use_backend
from repro.tensor import Tensor, is_grad_enabled, no_grad


def leaf():
    return Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)


class TestNoGradNesting:
    def test_nested_no_grad_restores_each_level(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_ops_inside_no_grad_are_detached(self):
        x = leaf()
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._parents == ()

    def test_mode_restored_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()
        # And from a nested level:
        with no_grad():
            with pytest.raises(ValueError):
                with no_grad():
                    raise ValueError("boom")
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_is_thread_local(self):
        """Disabling grad in one thread must not leak into another."""
        results = {}
        barrier = threading.Barrier(2)

        def disabled_thread():
            with no_grad():
                barrier.wait()       # both threads inside their regions
                results["disabled"] = is_grad_enabled()
                barrier.wait()

        def enabled_thread():
            barrier.wait()
            results["enabled"] = is_grad_enabled()
            barrier.wait()

        threads = [threading.Thread(target=disabled_thread),
                   threading.Thread(target=enabled_thread)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == {"disabled": False, "enabled": True}


class TestComposition:
    def test_use_backend_inside_no_grad(self):
        backend = NumpyBackend()
        with no_grad():
            with use_backend(backend):
                assert not is_grad_enabled()
                assert get_backend() is backend
            assert not is_grad_enabled()
        assert is_grad_enabled()
        assert get_backend() is not backend

    def test_no_grad_inside_use_backend(self):
        backend = NumpyBackend()
        with use_backend(backend):
            with no_grad():
                assert get_backend() is backend
                assert not is_grad_enabled()
            assert is_grad_enabled()
            assert get_backend() is backend

    def test_exception_unwinds_both_contexts(self):
        backend = NumpyBackend()
        with pytest.raises(RuntimeError):
            with use_backend(backend):
                with no_grad():
                    raise RuntimeError("boom")
        assert is_grad_enabled()
        assert get_backend() is not backend

    def test_no_state_leaks_across_threads(self):
        """A thread that sets both contexts leaves other threads untouched."""
        backend = NumpyBackend()
        inner = {}

        def worker():
            with use_backend(backend), no_grad():
                inner["backend"] = get_backend()
                inner["grad"] = is_grad_enabled()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert inner == {"backend": backend, "grad": False}
        assert get_backend() is not backend
        assert is_grad_enabled()
