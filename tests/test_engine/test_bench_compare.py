"""The perf-regression gate: compare_engine_bench + ``bench --compare``."""

import copy
import json

import pytest

from repro.cli import main
from repro.engine.bench import (BENCH_FORMAT_VERSION, compare_engine_bench,
                                format_bench_comparison, run_engine_bench)


@pytest.fixture(scope="module")
def bench_doc():
    """One cheap real bench run shared by the whole module."""
    return run_engine_bench(backends=("numpy",), batch=4, channels=4,
                            size=8, repeats=1, sweep=True, sweep_workers=1)


def scale_times(doc, factor):
    """A fabricated run of the same shape, ``factor``x slower."""
    scaled = copy.deepcopy(doc)
    for entry in scaled["backends"].values():
        for op in ("conv_forward", "conv_backward", "bn_opt_step"):
            entry[op]["best_s"] *= factor
            entry[op]["median_s"] *= factor
    for mode in ("serial", "parallel"):
        scaled["sweep"][mode]["wall_s"] *= factor
        scaled["sweep"][mode]["cells_per_s"] /= factor
    return scaled


class TestCompareEngineBench:
    def test_identical_documents_pass(self, bench_doc):
        comparison = compare_engine_bench(bench_doc, bench_doc,
                                          tolerance_pct=0.0)
        assert comparison["regressions"] == []
        # kernels and both sweep throughputs were all actually gated
        metrics = {c["metric"] for c in comparison["checked"]}
        assert "numpy/conv_forward/best_s" in metrics
        assert "sweep/serial/cells_per_s" in metrics
        assert "sweep/parallel/cells_per_s" in metrics

    def test_injected_2x_slowdown_fails(self, bench_doc):
        comparison = compare_engine_bench(scale_times(bench_doc, 2.0),
                                          bench_doc, tolerance_pct=40.0)
        flagged = {c["metric"] for c in comparison["regressions"]}
        assert "numpy/conv_forward/best_s" in flagged
        assert "sweep/serial/cells_per_s" in flagged
        assert all(c["ratio"] == pytest.approx(2.0)
                   for c in comparison["regressions"])
        assert "REGRESSED" in format_bench_comparison(comparison)

    def test_tolerance_is_respected(self, bench_doc):
        slower = scale_times(bench_doc, 1.2)      # 20% slower
        assert not compare_engine_bench(slower, bench_doc,
                                        tolerance_pct=40.0)["regressions"]
        assert compare_engine_bench(slower, bench_doc,
                                    tolerance_pct=10.0)["regressions"]
        with pytest.raises(ValueError, match="tolerance"):
            compare_engine_bench(bench_doc, bench_doc, tolerance_pct=-1)

    def test_speedups_never_flagged(self, bench_doc):
        faster = scale_times(bench_doc, 0.25)
        comparison = compare_engine_bench(faster, bench_doc,
                                          tolerance_pct=0.0)
        assert comparison["regressions"] == []

    def test_v1_baseline_without_sweep_is_tolerated(self, bench_doc):
        legacy = copy.deepcopy(bench_doc)
        del legacy["sweep"]
        legacy["version"] = 1
        comparison = compare_engine_bench(bench_doc, legacy,
                                          tolerance_pct=40.0)
        assert comparison["regressions"] == []
        assert "sweep/serial/cells_per_s" in comparison["skipped"]
        # kernels are still gated against a v1 baseline
        assert any(c["metric"].startswith("numpy/")
                   for c in comparison["checked"])

    def test_document_version_is_3_with_sweep_section(self, bench_doc):
        assert BENCH_FORMAT_VERSION == 3
        assert bench_doc["version"] == 3
        sweep = bench_doc["sweep"]
        assert sweep["cells"] == 6
        assert sweep["serial"]["cells_per_s"] > 0
        assert sweep["parallel"]["cells_per_s"] > 0
        assert sweep["parallel"]["workers"] == 1


def serving_section(p50=40.0, p95=70.0, p99=90.0, fps=250.0):
    """A fabricated ``serving`` section of the shape loadgen emits."""
    return {
        "config": {"tenants": 2, "frames_per_tenant": 96,
                   "batch_size": 16, "arrival": "poisson:rate=256",
                   "seed": 0, "workers": 2, "method": "bn_opt",
                   "guard": True},
        "requests": 12, "frames_accepted": 192, "frames_dropped": 0,
        "frames_per_s": fps,
        "latency_ms": {"p50": p50, "p95": p95, "p99": p99,
                       "mean": p50, "max": p99},
        "open_loop_latency_ms": {"p50": p50, "p95": p95, "p99": p99,
                                 "mean": p50, "max": p99},
        "queue_depth": {"samples": 20, "mean": 4.0, "max": 16},
        "errors": 0,
    }


class TestServingComparison:
    """The v3 ``serving`` section: gated when both sides have it,
    informational when the baseline predates it."""

    def test_fabricated_2x_p99_regression_turns_the_gate_red(
            self, bench_doc):
        base = copy.deepcopy(bench_doc)
        base["serving"] = serving_section()
        current = copy.deepcopy(base)
        current["serving"]["latency_ms"]["p99"] *= 2.0
        comparison = compare_engine_bench(current, base,
                                          tolerance_pct=40.0)
        flagged = {c["metric"] for c in comparison["regressions"]}
        assert flagged == {"serving/latency_p99_ms"}
        assert "REGRESSED" in format_bench_comparison(comparison)

    def test_throughput_drop_is_a_regression(self, bench_doc):
        base = copy.deepcopy(bench_doc)
        base["serving"] = serving_section(fps=300.0)
        current = copy.deepcopy(base)
        current["serving"]["frames_per_s"] = 100.0
        comparison = compare_engine_bench(current, base,
                                          tolerance_pct=40.0)
        flagged = {c["metric"] for c in comparison["regressions"]}
        assert "serving/frames_per_s" in flagged

    def test_parity_serving_sections_pass_and_are_checked(
            self, bench_doc):
        doc = copy.deepcopy(bench_doc)
        doc["serving"] = serving_section()
        comparison = compare_engine_bench(doc, doc, tolerance_pct=0.0)
        assert comparison["regressions"] == []
        assert comparison["notes"] == []
        metrics = {c["metric"] for c in comparison["checked"]}
        assert {"serving/latency_p50_ms", "serving/latency_p95_ms",
                "serving/latency_p99_ms",
                "serving/frames_per_s"} <= metrics

    def test_pre_v3_baseline_is_informational_not_gated(self, bench_doc):
        current = copy.deepcopy(bench_doc)
        current["serving"] = serving_section(p99=10_000.0, fps=0.001)
        comparison = compare_engine_bench(current, bench_doc,
                                          tolerance_pct=40.0)
        assert comparison["regressions"] == []
        assert "serving/latency_p99_ms" in comparison["skipped"]
        assert "serving/frames_per_s" in comparison["skipped"]
        assert any("informational" in note
                   for note in comparison["notes"])
        assert "note:" in format_bench_comparison(comparison)

    def test_latency_improvement_never_flagged(self, bench_doc):
        base = copy.deepcopy(bench_doc)
        base["serving"] = serving_section()
        current = copy.deepcopy(base)
        for key in ("p50", "p95", "p99"):
            current["serving"]["latency_ms"][key] /= 4.0
        current["serving"]["frames_per_s"] *= 4.0
        comparison = compare_engine_bench(current, base,
                                          tolerance_pct=0.0)
        assert comparison["regressions"] == []


class TestBenchCompareCli:
    """`repro bench --compare` — green on parity, red on regression."""

    @pytest.fixture
    def stub_bench(self, bench_doc, monkeypatch):
        """Make the CLI's bench run instant and deterministic."""
        import repro.engine.bench as bench_mod

        def fake_run(**kwargs):
            return copy.deepcopy(bench_doc)

        monkeypatch.setattr(bench_mod, "run_engine_bench", fake_run)
        return bench_doc

    def test_parity_baseline_exits_zero(self, stub_bench, tmp_path,
                                        capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(stub_bench))
        out = tmp_path / "bench-ci.json"
        assert main(["bench", "--json", str(out), "--compare",
                     str(baseline), "--tolerance", "40"]) == 0
        assert "0 regression(s)" in capsys.readouterr().out
        assert json.loads(out.read_text())["version"] == BENCH_FORMAT_VERSION

    def test_regression_exits_nonzero(self, stub_bench, tmp_path, capsys):
        # a baseline 2x *faster* than the stubbed current run == the
        # current run slowed 2x against its baseline
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(scale_times(stub_bench, 0.5)))
        assert main(["bench", "--json", str(tmp_path / "b.json"),
                     "--compare", str(baseline), "--tolerance", "40"]) == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "perf regression" in captured.err
