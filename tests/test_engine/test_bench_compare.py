"""The perf-regression gate: compare_engine_bench + ``bench --compare``."""

import copy
import json

import pytest

from repro.cli import main
from repro.engine.bench import (BENCH_FORMAT_VERSION, compare_engine_bench,
                                format_bench_comparison, run_engine_bench)


@pytest.fixture(scope="module")
def bench_doc():
    """One cheap real bench run shared by the whole module."""
    return run_engine_bench(backends=("numpy",), batch=4, channels=4,
                            size=8, repeats=1, sweep=True, sweep_workers=1)


def scale_times(doc, factor):
    """A fabricated run of the same shape, ``factor``x slower."""
    scaled = copy.deepcopy(doc)
    for entry in scaled["backends"].values():
        for op in ("conv_forward", "conv_backward", "bn_opt_step"):
            entry[op]["best_s"] *= factor
            entry[op]["median_s"] *= factor
    for mode in ("serial", "parallel"):
        scaled["sweep"][mode]["wall_s"] *= factor
        scaled["sweep"][mode]["cells_per_s"] /= factor
    return scaled


class TestCompareEngineBench:
    def test_identical_documents_pass(self, bench_doc):
        comparison = compare_engine_bench(bench_doc, bench_doc,
                                          tolerance_pct=0.0)
        assert comparison["regressions"] == []
        # kernels and both sweep throughputs were all actually gated
        metrics = {c["metric"] for c in comparison["checked"]}
        assert "numpy/conv_forward/best_s" in metrics
        assert "sweep/serial/cells_per_s" in metrics
        assert "sweep/parallel/cells_per_s" in metrics

    def test_injected_2x_slowdown_fails(self, bench_doc):
        comparison = compare_engine_bench(scale_times(bench_doc, 2.0),
                                          bench_doc, tolerance_pct=40.0)
        flagged = {c["metric"] for c in comparison["regressions"]}
        assert "numpy/conv_forward/best_s" in flagged
        assert "sweep/serial/cells_per_s" in flagged
        assert all(c["ratio"] == pytest.approx(2.0)
                   for c in comparison["regressions"])
        assert "REGRESSED" in format_bench_comparison(comparison)

    def test_tolerance_is_respected(self, bench_doc):
        slower = scale_times(bench_doc, 1.2)      # 20% slower
        assert not compare_engine_bench(slower, bench_doc,
                                        tolerance_pct=40.0)["regressions"]
        assert compare_engine_bench(slower, bench_doc,
                                    tolerance_pct=10.0)["regressions"]
        with pytest.raises(ValueError, match="tolerance"):
            compare_engine_bench(bench_doc, bench_doc, tolerance_pct=-1)

    def test_speedups_never_flagged(self, bench_doc):
        faster = scale_times(bench_doc, 0.25)
        comparison = compare_engine_bench(faster, bench_doc,
                                          tolerance_pct=0.0)
        assert comparison["regressions"] == []

    def test_v1_baseline_without_sweep_is_tolerated(self, bench_doc):
        legacy = copy.deepcopy(bench_doc)
        del legacy["sweep"]
        legacy["version"] = 1
        comparison = compare_engine_bench(bench_doc, legacy,
                                          tolerance_pct=40.0)
        assert comparison["regressions"] == []
        assert "sweep/serial/cells_per_s" in comparison["skipped"]
        # kernels are still gated against a v1 baseline
        assert any(c["metric"].startswith("numpy/")
                   for c in comparison["checked"])

    def test_document_version_is_2_with_sweep_section(self, bench_doc):
        assert BENCH_FORMAT_VERSION == 2
        assert bench_doc["version"] == 2
        sweep = bench_doc["sweep"]
        assert sweep["cells"] == 6
        assert sweep["serial"]["cells_per_s"] > 0
        assert sweep["parallel"]["cells_per_s"] > 0
        assert sweep["parallel"]["workers"] == 1


class TestBenchCompareCli:
    """`repro bench --compare` — green on parity, red on regression."""

    @pytest.fixture
    def stub_bench(self, bench_doc, monkeypatch):
        """Make the CLI's bench run instant and deterministic."""
        import repro.engine.bench as bench_mod

        def fake_run(**kwargs):
            return copy.deepcopy(bench_doc)

        monkeypatch.setattr(bench_mod, "run_engine_bench", fake_run)
        return bench_doc

    def test_parity_baseline_exits_zero(self, stub_bench, tmp_path,
                                        capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(stub_bench))
        out = tmp_path / "bench-ci.json"
        assert main(["bench", "--json", str(out), "--compare",
                     str(baseline), "--tolerance", "40"]) == 0
        assert "0 regression(s)" in capsys.readouterr().out
        assert json.loads(out.read_text())["version"] == 2

    def test_regression_exits_nonzero(self, stub_bench, tmp_path, capsys):
        # a baseline 2x *faster* than the stubbed current run == the
        # current run slowed 2x against its baseline
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(scale_times(stub_bench, 0.5)))
        assert main(["bench", "--json", str(tmp_path / "b.json"),
                     "--compare", str(baseline), "--tolerance", "40"]) == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "perf regression" in captured.err
