"""Architecture fidelity: the paper's Section III-B / IV-F footprints.

These are the strongest evidence that our re-implementations are the
paper's actual architectures: the BN parameter counts (7808 / 5408 /
25216 / 34112) are matched *exactly*, and GMACs / parameter totals to
within rounding.
"""

import pytest

from repro.models import build_model, model_info
from repro.models.registry import MODEL_NAMES


@pytest.fixture(scope="module")
def summaries(full_summaries):
    return full_summaries


class TestExactBNParams:
    @pytest.mark.parametrize("name,expected", [
        ("resnet18", 7808),
        ("wrn40_2", 5408),
        ("resnext29", 25216),
        ("mobilenet_v2", 34112),
    ])
    def test_bn_params_exact(self, summaries, name, expected):
        assert summaries[name].bn_params == expected

    def test_resnext_has_most_bn_params_of_robust_models(self, summaries):
        robust = ["resnet18", "wrn40_2", "resnext29"]
        assert max(robust, key=lambda n: summaries[n].bn_params) == "resnext29"

    def test_mobilenet_has_most_bn_params_overall(self, summaries):
        assert max(MODEL_NAMES, key=lambda n: summaries[n].bn_params) == "mobilenet_v2"


class TestGMACs:
    @pytest.mark.parametrize("name,expected,tol", [
        ("resnet18", 0.56, 0.02),
        ("wrn40_2", 0.33, 0.02),
        ("resnext29", 1.08, 0.02),
        # the paper reports 0.096; our count of the standard CIFAR
        # topology gives 0.088 (see EXPERIMENTS.md known deviations)
        ("mobilenet_v2", 0.096, 0.10),
    ])
    def test_gmacs(self, summaries, name, expected, tol):
        assert summaries[name].gmacs == pytest.approx(expected, rel=tol)

    def test_mac_ordering_matches_paper(self, summaries):
        # RXT > R18 > WRN > MobileNet (Section IV-B/F)
        order = sorted(MODEL_NAMES, key=lambda n: summaries[n].gmacs,
                       reverse=True)
        assert order == ["resnext29", "resnet18", "wrn40_2", "mobilenet_v2"]


class TestParameterCounts:
    @pytest.mark.parametrize("name,millions", [
        ("resnet18", 11.17),
        ("wrn40_2", 2.24),
        ("resnext29", 6.81),
    ])
    def test_param_totals(self, summaries, name, millions):
        assert summaries[name].total_params / 1e6 == pytest.approx(millions,
                                                                   rel=0.01)

    def test_summary_matches_module_count(self, summaries):
        for name in MODEL_NAMES:
            model = build_model(name, "full")
            assert summaries[name].total_params == model.num_parameters()

    def test_registry_metadata_agrees_with_summaries(self, summaries):
        for name in MODEL_NAMES:
            info = model_info(name)
            assert summaries[name].bn_params == info.paper_bn_params


class TestBNOptTrainableFraction:
    def test_bn_params_below_one_percent(self, summaries):
        # Section II-C: "the transformation parameters constitute < 1% of
        # the total model parameters" (true for the three robust models).
        for name in ("resnet18", "wrn40_2", "resnext29"):
            summary = summaries[name]
            assert summary.bn_params / summary.total_params < 0.01

    def test_mobilenet_fraction_is_larger(self, summaries):
        s = summaries["mobilenet_v2"]
        assert s.bn_params / s.total_params > 0.01
