"""Architecture behaviour: shapes, blocks, profiles, registry."""

import numpy as np
import pytest

from repro.models import build_model
from repro.models.mobilenet import InvertedResidual, MobileNetV2
from repro.models.registry import MODEL_NAMES, build_model, model_info
from repro.models.resnet import BasicBlock, ResNet18
from repro.models.resnext import ResNeXt29, ResNeXtBlock
from repro.models.wide_resnet import PreActBlock, WideResNet
from repro.tensor import Tensor, no_grad


def forward(model, batch=2, size=32):
    with no_grad():
        model.eval()
        return model(Tensor(np.random.default_rng(0)
                            .standard_normal((batch, 3, size, size))
                            .astype(np.float32)))


class TestTinyProfiles:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_tiny_forward_shape(self, name):
        out = forward(build_model(name, "tiny"), batch=2, size=16)
        assert out.shape == (2, 10)

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_tiny_is_much_smaller(self, name):
        full = build_model(name, "full")
        tiny = build_model(name, "tiny")
        assert tiny.num_parameters() < full.num_parameters() / 10

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError):
            build_model("resnet18", "huge")

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("alexnet")

    def test_model_info_labels(self):
        assert model_info("resnext29").paper_label == "RXT-AM"
        assert model_info("wrn40_2").paper_label == "WRN-AM"
        assert model_info("resnet18").paper_label == "R18-AM-AT"


class TestResNet18:
    def test_full_forward_shape(self):
        out = forward(build_model("resnet18", "tiny"), batch=1, size=32)
        assert out.shape == (1, 10)

    def test_basic_block_identity_shortcut(self):
        block = BasicBlock(8, 8, stride=1)
        from repro import nn
        assert isinstance(block.shortcut, nn.Identity)

    def test_basic_block_projection_without_bn(self):
        # the 7808-BN-parameter count requires conv-only shortcuts
        block = BasicBlock(8, 16, stride=2)
        from repro import nn
        assert isinstance(block.shortcut, nn.Conv2d)
        bn_count = sum(1 for m in block.modules()
                       if isinstance(m, nn.BatchNorm2d))
        assert bn_count == 2

    def test_stage_downsampling(self):
        model = ResNet18(width=8)
        x = Tensor(np.zeros((1, 3, 32, 32), dtype=np.float32))
        with no_grad():
            model.eval()
            stem = model.relu(model.bn1(model.conv1(x)))
            s1 = model.layer1(stem)
            s2 = model.layer2(s1)
        assert s1.shape == (1, 8, 32, 32)
        assert s2.shape == (1, 16, 16, 16)


class TestWideResNet:
    def test_depth_validation(self):
        with pytest.raises(ValueError):
            WideResNet(depth=17)

    def test_preact_block_projection_uses_activated_input(self, rng):
        block = PreActBlock(4, 8, stride=2)
        assert block.needs_projection
        out = block(Tensor(rng.standard_normal((1, 4, 8, 8)).astype(np.float32)))
        assert out.shape == (1, 8, 4, 4)

    def test_preact_block_identity(self, rng):
        block = PreActBlock(8, 8)
        assert not block.needs_projection
        out = block(Tensor(rng.standard_normal((2, 8, 6, 6)).astype(np.float32)))
        assert out.shape == (2, 8, 6, 6)

    def test_block_count(self):
        model = WideResNet(depth=40, widen_factor=2)
        blocks = [m for m in model.modules() if isinstance(m, PreActBlock)]
        assert len(blocks) == 18  # 6 per stage x 3 stages


class TestResNeXt:
    def test_grouped_conv_cardinality(self):
        model = ResNeXt29(cardinality=4, base_width=32)
        blocks = [m for m in model.modules() if isinstance(m, ResNeXtBlock)]
        assert len(blocks) == 9
        assert all(b.conv2.groups == 4 for b in blocks)

    def test_stage_widths(self):
        model = ResNeXt29(cardinality=4, base_width=32)
        # final stage emits 1024 channels -> fc input
        assert model.fc.in_features == 1024

    def test_block_output_shape(self, rng):
        block = ResNeXtBlock(16, 8, 32, cardinality=2, stride=2)
        out = block(Tensor(rng.standard_normal((1, 16, 8, 8)).astype(np.float32)))
        assert out.shape == (1, 32, 4, 4)


class TestMobileNetV2:
    def test_residual_only_when_shapes_match(self):
        assert InvertedResidual(16, 16, stride=1, expand_ratio=6).use_residual
        assert not InvertedResidual(16, 24, stride=1, expand_ratio=6).use_residual
        assert not InvertedResidual(16, 16, stride=2, expand_ratio=6).use_residual

    def test_expand_ratio_one_skips_expansion(self):
        block = InvertedResidual(8, 8, stride=1, expand_ratio=1)
        from repro import nn
        convs = [m for m in block.modules() if isinstance(m, nn.Conv2d)]
        assert len(convs) == 2  # depthwise + project only

    def test_depthwise_groups(self):
        model = MobileNetV2(width_mult=0.25)
        from repro import nn
        depthwise = [m for m in model.modules()
                     if isinstance(m, nn.Conv2d) and m.groups == m.in_channels
                     and m.in_channels > 1]
        assert len(depthwise) == 17  # one per inverted-residual block

    def test_width_mult_scales_params(self):
        small = MobileNetV2(width_mult=0.25).num_parameters()
        full = MobileNetV2(width_mult=1.0).num_parameters()
        assert small < full / 5


class TestFullSizeModelsExecute:
    """The full-size paper architectures must actually run (not just
    trace): one real forward pass each at CIFAR resolution."""

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_full_forward_single_sample(self, name):
        model = build_model(name, "full")
        out = forward(model, batch=1, size=32)
        assert out.shape == (1, 10)
        assert np.isfinite(out.data).all()

    def test_full_wrn_train_mode_batch(self):
        """Train-mode forward (batch statistics) on the full WRN."""
        model = build_model("wrn40_2", "full")
        model.train()
        x = np.random.default_rng(0).standard_normal(
            (4, 3, 32, 32)).astype(np.float32)
        with no_grad():
            out = model(Tensor(x))
        assert out.shape == (4, 10)
