"""Model-summary machinery: tracing, aggregation, caching, flavors."""

import pytest

from repro.models import build_model, summarize


class TestSummaryAggregates:
    def test_total_params_matches_model(self):
        model = build_model("wrn40_2", "tiny")
        summary = summarize(model, name="tiny-wrn")
        assert summary.total_params == model.num_parameters()

    def test_flavor_split_sums_to_conv_macs(self, full_summaries):
        for summary in full_summaries.values():
            split = summary.macs_by_flavor()
            assert sum(split.values()) == pytest.approx(summary.conv_macs)

    def test_resnext_has_grouped_macs(self, full_summaries):
        assert full_summaries["resnext29"].macs_by_flavor()["grouped"] > 0
        assert full_summaries["wrn40_2"].macs_by_flavor()["grouped"] == 0

    def test_mobilenet_has_depthwise_macs(self, full_summaries):
        assert full_summaries["mobilenet_v2"].macs_by_flavor()["depthwise"] > 0

    def test_bn_elements_positive_and_ordering(self, full_summaries):
        # ResNeXt's BN layers see by far the most elements — the root of
        # its adaptation cost in the paper.
        elems = {n: s.bn_elements for n, s in full_summaries.items()}
        assert elems["resnext29"] > 3 * elems["wrn40_2"]

    def test_saved_activations_exceed_peak(self, full_summaries):
        for summary in full_summaries.values():
            assert summary.saved_activation_elements > summary.peak_activation_elements

    def test_describe_mentions_counts(self, full_summaries):
        text = full_summaries["wrn40_2"].describe()
        assert "GMACs" in text and "5408 BN params" in text

    def test_weight_bytes(self, full_summaries):
        s = full_summaries["resnet18"]
        assert s.weight_bytes() == s.total_params * 4


class TestSummaryMechanics:
    def test_cache_returns_same_object(self):
        model = build_model("resnet18", "tiny")
        first = summarize(model)
        second = summarize(model)
        assert first is second

    def test_different_input_shape_not_cached_together(self):
        model = build_model("resnet18", "tiny")
        a = summarize(model, input_shape=(3, 32, 32))
        b = summarize(model, input_shape=(3, 16, 16))
        assert a is not b
        assert a.total_macs > b.total_macs

    def test_summary_restores_training_mode(self):
        model = build_model("wrn40_2", "tiny")
        model.train()
        summarize(model, input_shape=(3, 8, 8))
        assert model.training

    def test_macs_scale_with_resolution(self):
        model = build_model("wrn40_2", "tiny")
        small = summarize(model, input_shape=(3, 16, 16))
        large = summarize(model, input_shape=(3, 32, 32))
        assert large.total_macs == pytest.approx(4 * small.total_macs, rel=0.05)

    def test_layer_kinds_present(self, full_summaries):
        kinds = {layer.kind for layer in full_summaries["resnet18"].layers}
        assert {"conv", "bn", "act", "pool", "linear"} <= kinds

    def test_bn_layer_count_wrn(self, full_summaries):
        assert full_summaries["wrn40_2"].bn_layer_count() == 37
