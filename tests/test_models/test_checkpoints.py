"""Checkpoint save/load round trips."""

import numpy as np
import pytest

from repro.models import build_model
from repro.models.checkpoints import load_checkpoint, read_checkpoint, save_checkpoint
from repro.tensor import Tensor, no_grad


def logits_of(model, x):
    model.eval()
    with no_grad():
        return model(Tensor(x)).data


class TestCheckpoints:
    def test_round_trip_into_existing_model(self, tmp_path, rng):
        source = build_model("wrn40_2", "tiny")
        path = tmp_path / "model.npz"
        save_checkpoint(source, path)
        target = build_model("wrn40_2", "tiny")
        load_checkpoint(path, model=target)
        x = rng.standard_normal((2, 3, 16, 16)).astype(np.float32)
        np.testing.assert_allclose(logits_of(source, x), logits_of(target, x),
                                   rtol=1e-5)

    def test_rebuild_from_metadata(self, tmp_path, rng):
        source = build_model("resnet18", "tiny")
        path = tmp_path / "model.npz"
        save_checkpoint(source, path, model_name="resnet18", profile="tiny")
        rebuilt = load_checkpoint(path)
        x = rng.standard_normal((1, 3, 16, 16)).astype(np.float32)
        np.testing.assert_allclose(logits_of(source, x), logits_of(rebuilt, x),
                                   rtol=1e-5)

    def test_missing_metadata_and_no_model_raises(self, tmp_path):
        source = build_model("wrn40_2", "tiny")
        path = tmp_path / "anon.npz"
        save_checkpoint(source, path)
        with pytest.raises(ValueError):
            load_checkpoint(path)

    def test_extra_metadata_preserved(self, tmp_path):
        source = build_model("wrn40_2", "tiny")
        path = tmp_path / "model.npz"
        save_checkpoint(source, path, model_name="wrn40_2", profile="tiny",
                        epochs=10, augmix=True)
        _, meta = read_checkpoint(path)
        assert meta["epochs"] == 10
        assert meta["augmix"] is True

    def test_buffers_included(self, tmp_path, rng):
        source = build_model("wrn40_2", "tiny")
        source.train()
        with no_grad():
            source(Tensor(rng.standard_normal((8, 3, 16, 16))
                          .astype(np.float32)))
        path = tmp_path / "model.npz"
        save_checkpoint(source, path)
        state, _ = read_checkpoint(path)
        running = [k for k in state if "running_mean" in k]
        assert running
        assert any(np.abs(state[k]).sum() > 0 for k in running)

    def test_loaded_model_in_eval_mode(self, tmp_path):
        source = build_model("wrn40_2", "tiny")
        path = tmp_path / "model.npz"
        save_checkpoint(source, path, model_name="wrn40_2", profile="tiny")
        model = load_checkpoint(path)
        assert not model.training
