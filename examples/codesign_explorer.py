#!/usr/bin/env python3
"""Algorithm-hardware co-design explorer (the paper's Section IV, live).

Sweeps the full study grid through the calibrated device simulators and
answers the paper's three co-design questions:

(i)   per device, the optimal (model, algorithm, batch) for each of the
      four weight cases;
(ii)  where the bottlenecks are (conv/BN forward/backward breakdowns);
(iii) what-if optimizations — a backward accelerator and extra DRAM.

This is entirely simulated (no training), so it runs in seconds.

Run:  python examples/codesign_explorer.py
"""

from repro.core import StudyConfig, run_simulated_study
from repro.core.objectives import format_selection_table
from repro.core.report import (
    render_error_grid,
    render_forward_times,
    render_mobilenet_table,
    render_overall,
)
from repro.devices import device_info
from repro.devices.memory import estimate_memory
from repro.models import build_model, summarize
from repro.profiling import breakdown_table, format_breakdown


def main() -> None:
    study = run_simulated_study(StudyConfig())

    print(render_error_grid())

    for device in ("ultra96", "rpi4", "xavier_nx_cpu", "xavier_nx_gpu"):
        print()
        print(render_forward_times(study, device))
        print()
        print(format_selection_table(
            study.filter(device=device),
            title=f"Optimal configurations on {device}:"))

    print()
    print(render_overall(study))

    print("\n=== Bottleneck analysis (batch 50) ===")
    summaries = [summarize(build_model(name, "full"), name=name)
                 for name in ("wrn40_2", "resnet18", "resnext29")]
    for device_name in ("ultra96", "xavier_nx_gpu"):
        rows = breakdown_table(summaries, device_info(device_name))
        print()
        print(format_breakdown(rows, title=f"{device_name}:"))

    print("\n=== What-if: backward accelerator on the FPGA fabric ===")
    wrn = summaries[0]
    from repro.devices import forward_latency
    fpga = device_info("ultra96")
    accelerated = fpga.with_overrides(conv_bw_factor=1.0, bn_bw_factor=1.0)
    for label, device in (("A53 cores only", fpga),
                          ("with PL backward engine", accelerated)):
        t = forward_latency(wrn, 50, device, adapts_bn_stats=True,
                            does_backward=True).forward_time_s
        print(f"  BN-Opt WRN-50: {t:6.2f} s  ({label})")

    print("\n=== What-if: how much DRAM does ResNeXt + BN-Opt need? ===")
    rxt = summaries[2]
    for batch in (50, 100, 200):
        need = estimate_memory(rxt, batch, fpga, does_backward=True)
        print(f"  batch {batch:>3d}: {need.total_gb:5.2f} GB "
              f"(graph {need.graph_gb:.2f} GB) -> "
              f"{'fits' if need.fits else 'OOM'} on a 2 GB Ultra96")


if __name__ == "__main__":
    main()
