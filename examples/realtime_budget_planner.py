#!/usr/bin/env python3
"""Real-time deployment planner: which (device, algorithm) holds the line?

The paper's bottom line is that adaptation overhead "can be a bottleneck
for tight deadlines" — but whether it *is* one depends on the frame
rate, batch size, and device.  This example uses the real-time stream
simulator (:mod:`repro.core.streaming`) to sweep camera rates against
every (device, method) pair for WRN-40-2 and prints a deployment matrix:
sustainable throughput, end-to-end frame latency, drop rate under
overload, and the effective accuracy once drops are accounted for.

Run:  python examples/realtime_budget_planner.py
"""

from repro.core.streaming import RealTimeStream, max_sustainable_fps, simulate_realtime
from repro.devices import device_info
from repro.models import build_model, summarize

DEVICES = ("ultra96", "rpi4", "xavier_nx_cpu", "xavier_nx_gpu")
METHODS = ("no_adapt", "bn_norm", "bn_opt")
BATCH = 50
CAMERA_RATES = (5, 30, 120)     # fps
FRAMES = 3000


def main() -> None:
    summary = summarize(build_model("wrn40_2", "full"), name="wrn40_2")

    print("Sustainable throughput (fps) for WRN-40-2, batch 50:")
    header = f"{'device':<15s}" + "".join(f"{m:>12s}" for m in METHODS)
    print(header)
    print("-" * len(header))
    for device_name in DEVICES:
        device = device_info(device_name)
        row = f"{device_name:<15s}"
        for method in METHODS:
            fps = max_sustainable_fps(summary, device, method, BATCH)
            row += f"{fps:12.1f}"
        print(row)

    for fps in CAMERA_RATES:
        print(f"\n=== Camera at {fps} fps "
              f"({FRAMES} frames, queue capacity 2 batches) ===")
        print(f"{'device':<15s}{'method':<10s}{'drops':>8s}{'late':>7s}"
              f"{'latency':>10s}{'eff.err':>9s}{'energy':>9s}")
        for device_name in DEVICES:
            device = device_info(device_name)
            for method in METHODS:
                stream = RealTimeStream(fps=fps, num_frames=FRAMES,
                                        batch_size=BATCH)
                try:
                    card = simulate_realtime(summary, device, method, stream)
                except MemoryError:
                    print(f"{device_name:<15s}{method:<10s}     OOM")
                    continue
                print(f"{device_name:<15s}{method:<10s}"
                      f"{card.drop_rate:>8.0%}"
                      f"{card.deadline_miss_rate:>7.0%}"
                      f"{card.mean_frame_latency_s * 1e3:>8.0f}ms"
                      f"{card.effective_error_pct:>9.2f}"
                      f"{card.energy_j:>8.1f}J")

    print("\nReading the matrix:")
    print(" - at 5 fps even the FPGA sustains BN-Norm;")
    print(" - at 30 fps only the NX GPU holds BN-Norm without drops —")
    print("   the paper's A3 pick, now with its real-time margin visible;")
    print(" - at 120 fps every adaptation method sheds load somewhere,")
    print("   and effective error converges toward the frozen baseline:")
    print("   the co-design motivation, quantified.")


if __name__ == "__main__":
    main()
