#!/usr/bin/env python3
"""Medical-imaging scenario: episodic adaptation per scanner session.

The paper's intro cites "medical imaging where noise could be added due
to scanners and the DNN for analysis needs to rapidly adapt without
labeled data".  Each scanner has a characteristic noise signature; a
diagnostic model visits several scanners per day and must adapt to each
*without contaminating* its behaviour for the next one.

This example runs BN-Opt episodically: adapt to each scanner's stream,
record the entropy trajectory (the unsupervised signal TENT minimizes)
and the accuracy recovery, then reset to the pristine model before the
next scanner.  It also simulates the energy bill of a full day on a
Raspberry Pi-class bedside unit with the wall-meter simulator.

Run:  python examples/medical_edge_adaptation.py
"""


from repro.adapt import BNOpt, NoAdapt
from repro.data import CorruptionStream, make_synth_cifar
from repro.devices import PowerMeter, device_info, forward_latency
from repro.models import build_model, summarize
from repro.train import pretrain_robust

# each scanner = a corruption signature (type, severity)
SCANNERS = [
    ("scanner A (old CT, grainy)", "gaussian_noise", 4),
    ("scanner B (low-dose, photon starved)", "shot_noise", 5),
    ("scanner C (miscalibrated, washed out)", "contrast", 4),
]
BATCH = 50


def main() -> None:
    model = pretrain_robust("wrn40_2", image_size=16, train_samples=4000,
                            epochs=10)
    test = make_synth_cifar(400, size=16, seed=123)

    print("Episodic BN-Opt adaptation, one episode per scanner:\n")
    for scanner_name, corruption, severity in SCANNERS:
        stream = CorruptionStream.from_dataset(test, corruption,
                                               severity=severity, seed=11)
        frozen = NoAdapt().prepare(model)
        frozen_correct = sum(
            int((frozen.forward(x).argmax(-1) == y).sum())
            for x, y in stream.batches(BATCH))
        frozen.reset()

        method = BNOpt(lr=5e-3).prepare(model)
        correct = 0
        entropies = []
        for x, y in stream.batches(BATCH):
            logits = method.forward(x)
            correct += int((logits.argmax(-1) == y).sum())
            entropies.append(method.last_entropy)
        total = stream.num_batches(BATCH) * BATCH
        print(f"{scanner_name}")
        print(f"  frozen accuracy : {frozen_correct / total:6.2%}")
        print(f"  adapted accuracy: {correct / total:6.2%}")
        trajectory = " -> ".join(f"{h:.3f}" for h in entropies)
        print(f"  entropy trajectory: {trajectory}")
        method.reset()          # pristine model for the next scanner
        print()

    # --- the day's energy bill on a bedside RPi-class unit ----------------
    print("Energy audit: 40 adaptation batches/day on a Raspberry Pi 4")
    summary = summarize(build_model("wrn40_2", "full"), name="wrn40_2")
    device = device_info("rpi4")
    meter = PowerMeter(device, sample_hz=5.0)
    breakdown = forward_latency(summary, BATCH, device,
                                adapts_bn_stats=True, does_backward=True)
    daily_joules = sum(meter.record(breakdown) for _ in range(40))
    print(f"  mean measured power: {meter.average_power_w():.2f} W")
    print(f"  per-batch energy   : {daily_joules / 40:.1f} J")
    print(f"  daily adaptation   : {daily_joules / 1e3:.2f} kJ "
          f"({daily_joules / 3.6e3:.4f} Wh)")


if __name__ == "__main__":
    main()
