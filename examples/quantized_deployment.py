#!/usr/bin/env python3
"""Quantized deployment: does low precision break test-time adaptation?

Paper insight iv says pruning/quantization "should be explored" but
warns that model reduction "should not compromise the robust accuracy
against corruptions."  This example runs that exploration end to end:

1. quantize the robust tiny WRN's weights to int8 and int4 (per-channel
   fake quantization) and measure corruption error with and without
   BN-Norm adaptation — natively;
2. project what int8 buys (and doesn't) on each device, splitting the
   answer by adaptation algorithm: quantization accelerates the fp-heavy
   *inference*, but BN-Opt's fp32 backward keeps most of its cost.

Run:  python examples/quantized_deployment.py
"""

import numpy as np

from repro.adapt import build_method
from repro.compress import quantize_model_weights, quantized_cost
from repro.data import CorruptionStream, make_synth_cifar
from repro.devices import device_info, forward_latency
from repro.models import build_model, summarize
from repro.train import pretrain_robust

CORRUPTIONS = ("gaussian_noise", "fog", "contrast")


def mean_error(method_name, model, streams):
    errors = []
    for stream in streams.values():
        method = build_method(method_name).prepare(model)
        correct = total = 0
        for images, labels in stream.batches(50):
            logits = method.forward(images)
            correct += int((logits.argmax(axis=-1) == labels).sum())
            total += len(labels)
        method.reset()
        errors.append(100.0 * (1.0 - correct / total))
    return float(np.mean(errors))


def main() -> None:
    test = make_synth_cifar(600, size=16, seed=99)
    streams = {name: CorruptionStream.from_dataset(test, name, severity=5,
                                                   seed=7)
               for name in CORRUPTIONS}

    print("=== Native accuracy: precision x adaptation ===")
    print(f"{'precision':>10s} {'no_adapt':>10s} {'bn_norm':>10s} "
          f"{'weights MB':>11s}")
    for label, bits in (("fp32", None), ("int8", 8), ("int4", 4)):
        model = pretrain_robust("wrn40_2", image_size=16,
                                train_samples=4000, epochs=10)
        if bits is not None:
            quantize_model_weights(model, bits)
        weight_mb = model.num_parameters() * ((bits or 32) / 8) / 1e6
        frozen = mean_error("no_adapt", model, streams)
        adapted = mean_error("bn_norm", model, streams)
        print(f"{label:>10s} {frozen:>10.2f} {adapted:>10.2f} "
              f"{weight_mb:>11.3f}")

    print("\n=== Projected int8 latency on the edge (full WRN, batch 50) ===")
    summary = summarize(build_model("wrn40_2", "full"), name="wrn40_2")
    flags = {"no_adapt": (False, False), "bn_norm": (True, False),
             "bn_opt": (True, True)}
    print(f"{'device':<15s}{'method':<10s}{'fp32':>9s}{'int8':>9s}"
          f"{'saving':>9s}")
    for device_name in ("ultra96", "rpi4", "xavier_nx_gpu"):
        device = device_info(device_name)
        for method_name, (adapts, backward) in flags.items():
            base = forward_latency(summary, 50, device,
                                   adapts_bn_stats=adapts,
                                   does_backward=backward).forward_time_s
            quant_time, _, _ = quantized_cost(summary, 50, device,
                                              adapts_bn_stats=adapts,
                                              does_backward=backward, bits=8)
            print(f"{device_name:<15s}{method_name:<10s}{base:>9.3f}"
                  f"{quant_time:>9.3f}{(base - quant_time) / base:>9.0%}")

    print("\nTakeaway: int8 weights cost ~0 robust accuracy and BN-Norm "
          "still adapts;\nbut the saving shrinks from ~45% (inference) to "
          "~10% (BN-Opt) because the\nentropy backward stays fp32 — "
          "quantization alone does not fix the paper's\nadaptation "
          "bottleneck.")


if __name__ == "__main__":
    main()
