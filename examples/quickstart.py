#!/usr/bin/env python3
"""Quickstart: the paper's pipeline end-to-end in one script.

1. Pre-train a (tiny-profile) robust Wide-ResNet on synthetic CIFAR-like
   data with AugMix.
2. Corrupt a held-out test stream (CIFAR-10-C style, severity 5).
3. Run the three test-time strategies — No-Adapt, BN-Norm, BN-Opt — and
   compare prediction errors.
4. Ask the device simulators what the winning configuration would cost
   on each of the paper's edge devices.

Run:  python examples/quickstart.py
(first run trains for ~2 minutes and caches the weights in $REPRO_CACHE)
"""

import numpy as np

from repro.adapt import build_method
from repro.core.config import case_label
from repro.data import CorruptionStream, make_synth_cifar
from repro.devices import device_info, energy_per_batch, forward_latency
from repro.models import build_model, summarize
from repro.train import evaluate, pretrain_robust


def main() -> None:
    print("=== 1. Robust pre-training (AugMix, tiny WRN-40-2 profile) ===")
    model = pretrain_robust("wrn40_2", image_size=16, train_samples=4000,
                            epochs=10)
    test = make_synth_cifar(600, size=16, seed=99)
    clean_error = evaluate(model, test.images, test.labels)
    print(f"clean test error: {100 * clean_error:.1f}%")

    print("\n=== 2./3. Corrupted streams and test-time adaptation ===")
    corruptions = ("gaussian_noise", "fog", "contrast", "brightness")
    batch_size = 50
    print(f"{'method':<10s}" + "".join(f"{c:>16s}" for c in corruptions)
          + f"{'mean':>8s}")
    for method_name in ("no_adapt", "bn_norm", "bn_opt"):
        kwargs = {"lr": 5e-3} if method_name == "bn_opt" else {}
        errors = []
        for corruption in corruptions:
            stream = CorruptionStream.from_dataset(test, corruption,
                                                   severity=5, seed=7)
            method = build_method(method_name, **kwargs).prepare(model)
            correct = total = 0
            for images, labels in stream.batches(batch_size):
                logits = method.forward(images)
                correct += int((logits.argmax(axis=-1) == labels).sum())
                total += len(labels)
            method.reset()
            errors.append(100 * (1 - correct / total))
        row = "".join(f"{e:16.1f}" for e in errors)
        print(f"{method_name:<10s}{row}{np.mean(errors):8.1f}")

    print("\n=== 4. What would this cost at the edge? (full-size WRN) ===")
    summary = summarize(build_model("wrn40_2", "full"), name="wrn40_2")
    flags = {"no_adapt": (False, False), "bn_norm": (True, False),
             "bn_opt": (True, True)}
    for device_name in ("ultra96", "rpi4", "xavier_nx_gpu"):
        device = device_info(device_name)
        print(f"\n{device.display_name} — batch {batch_size}:")
        for method_name, (adapts, backward) in flags.items():
            latency = forward_latency(summary, batch_size, device,
                                      adapts_bn_stats=adapts,
                                      does_backward=backward)
            energy = energy_per_batch(latency, device)
            label = case_label("wrn40_2", batch_size, method_name)
            print(f"  {label:<26s} {latency.forward_time_s:7.3f} s  "
                  f"{energy:6.2f} J")


if __name__ == "__main__":
    main()
