#!/usr/bin/env python3
"""Drone scenario: continual adaptation under *changing* conditions.

The paper motivates test-time adaptation with DNNs "performing human
action recognition on drones without labeled samples".  A drone's imaging
conditions drift mid-flight — clear air, then fog rolling in, then dusk
(brightness/contrast loss), then rain streaks (motion blur + noise).

This example flies a tiny robust WRN through such a four-phase stream
and compares three policies batch-by-batch:

- frozen (No-Adapt),
- BN-Norm with momentum 1.0 (the paper's per-batch recompute — adapts
  instantly when the weather changes),
- BN-Opt (TENT) running continually.

It also checks each policy against a real-time latency budget using the
Xavier NX GPU cost model (the paper's A3 operating point) — the "213 ms
overhead can be a bottleneck for tight deadlines" discussion, made
concrete.

Run:  python examples/drone_stream_adaptation.py
"""

import numpy as np

from repro.adapt import BNNorm, BNOpt, NoAdapt
from repro.data import corrupt_batch, make_synth_cifar
from repro.devices import device_info, forward_latency
from repro.models import build_model, summarize
from repro.train import pretrain_robust

PHASES = [
    ("clear skies", "clean", 0),
    ("fog bank", "fog", 5),
    ("dusk", "contrast", 5),
    ("rain", "motion_blur", 4),
]
BATCH = 50
BATCHES_PER_PHASE = 4


def build_flight_stream(seed: int = 0):
    """Images and labels for the whole flight, plus phase boundaries."""
    total = BATCH * BATCHES_PER_PHASE * len(PHASES)
    base = make_synth_cifar(total, size=16, seed=seed)
    images = base.images.copy()
    for phase_index, (_, corruption, severity) in enumerate(PHASES):
        start = phase_index * BATCH * BATCHES_PER_PHASE
        stop = start + BATCH * BATCHES_PER_PHASE
        if corruption != "clean":
            images[start:stop] = corrupt_batch(base.images[start:stop],
                                               corruption, severity=severity,
                                               seed=seed + phase_index)
    return images, base.labels


def main() -> None:
    model = pretrain_robust("wrn40_2", image_size=16, train_samples=4000,
                            epochs=10)
    images, labels = build_flight_stream()

    policies = {
        "frozen": NoAdapt(),
        "bn_norm": BNNorm(momentum=1.0),
        "bn_opt": BNOpt(lr=5e-3),
    }
    accuracies = {name: [] for name in policies}
    for name, policy in policies.items():
        policy.prepare(model)
        for start in range(0, len(labels), BATCH):
            x = images[start:start + BATCH]
            y = labels[start:start + BATCH]
            logits = policy.forward(x)
            accuracies[name].append(float((logits.argmax(-1) == y).mean()))
        policy.reset()

    print("Flight accuracy per batch (phases change every "
          f"{BATCHES_PER_PHASE} batches):")
    header = f"{'batch':>6s} {'phase':<12s}" + "".join(
        f"{name:>10s}" for name in policies)
    print(header)
    print("-" * len(header))
    for i in range(len(accuracies["frozen"])):
        phase = PHASES[i // BATCHES_PER_PHASE][0]
        row = f"{i:>6d} {phase:<12s}" + "".join(
            f"{accuracies[name][i]:10.2f}" for name in policies)
        print(row)

    print("\nPer-phase mean accuracy:")
    for phase_index, (phase, _, _) in enumerate(PHASES):
        window = slice(phase_index * BATCHES_PER_PHASE,
                       (phase_index + 1) * BATCHES_PER_PHASE)
        summary = "  ".join(
            f"{name}={np.mean(accuracies[name][window]):.2f}"
            for name in policies)
        print(f"  {phase:<12s} {summary}")

    # --- real-time budget check on the paper's A3 device -----------------
    print("\nReal-time check on Xavier NX GPU (frame budget 500 ms/batch):")
    wrn = summarize(build_model("wrn40_2", "full"), name="wrn40_2")
    device = device_info("xavier_nx_gpu")
    flags = {"frozen": (False, False), "bn_norm": (True, False),
             "bn_opt": (True, True)}
    for name, (adapts, backward) in flags.items():
        t = forward_latency(wrn, BATCH, device, adapts_bn_stats=adapts,
                            does_backward=backward).forward_time_s
        verdict = "meets" if t <= 0.5 else "MISSES"
        print(f"  {name:<8s} {t * 1e3:7.0f} ms/batch -> {verdict} budget")


if __name__ == "__main__":
    main()
